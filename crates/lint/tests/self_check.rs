//! The linter's strongest test: the real workspace must be clean. Any
//! regression — a stray `unwrap()` in library code, a `HashMap` on the
//! fingerprint path, a crate root losing `#![forbid(unsafe_code)]` — turns
//! up here (and in CI's `alem-lint --json` step) as a named diagnostic.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up");
    let report = alem_lint::lint_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace lint found {} issue(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually visited the workspace sources.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — walker is broken",
        report.files_scanned
    );
}

#[test]
fn workspace_root_is_discoverable() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let root = alem_lint::find_workspace_root(&here).expect("found root");
    assert!(root.join("Cargo.toml").is_file());
    assert!(root.join("crates/lint").is_dir());
}
