//! Seeded-bug fixtures for the semantic (interprocedural) analyses. Each
//! fixture plants exactly one bug and the test pins the diagnostic's
//! `file:line:col` anchor plus the full printed call chain / taint path,
//! frame by frame — the contract CI consumes via `--json`.

use alem_lint::analyses::analyze_files;
use alem_lint::Finding;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn analyze(files: &[(&str, String)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.clone()))
        .collect();
    analyze_files(&owned)
}

fn frames(f: &Finding) -> Vec<(&str, &str, usize, &str)> {
    f.chain
        .iter()
        .map(|fr| {
            (
                fr.symbol.as_str(),
                fr.path.as_str(),
                fr.line,
                fr.note.as_str(),
            )
        })
        .collect()
}

/// The acceptance-criterion regression: an `unwrap()` reachable from a
/// pub core API — two private hops away, across files — yields exactly
/// one diagnostic anchored at the pub root, with the whole chain printed.
#[test]
fn panic_reach_prints_the_full_chain_from_pub_root_to_unwrap() {
    let out = analyze(&[
        (
            "crates/core/src/chain_entry.rs",
            fixture("sem_chain_entry.rs"),
        ),
        ("crates/core/src/chain_mid.rs", fixture("sem_chain_mid.rs")),
    ]);
    assert_eq!(out.len(), 1, "{out:#?}");
    let f = &out[0];
    assert_eq!(
        (f.rule, f.path.as_str(), f.line, f.col),
        ("panic-reach", "crates/core/src/chain_entry.rs", 4, 8)
    );
    assert_eq!(
        f.message,
        "pub API `core::chain_entry::entry` can reach a panic: \
         core::chain_entry::entry -> core::chain_mid::mid -> core::chain_mid::deep: unwrap"
    );
    assert_eq!(
        frames(f),
        vec![
            (
                "core::chain_entry::entry",
                "crates/core/src/chain_entry.rs",
                4,
                ""
            ),
            (
                "core::chain_mid::mid",
                "crates/core/src/chain_mid.rs",
                3,
                ""
            ),
            (
                "core::chain_mid::deep",
                "crates/core/src/chain_mid.rs",
                8,
                "unwrap"
            ),
        ]
    );
}

/// An `allow` at the *source* site vets every path through it: the same
/// two-file chain with the `unwrap()` annotated produces nothing.
#[test]
fn allow_at_the_source_site_vets_every_path_through_it() {
    let mid = fixture("sem_chain_mid.rs").replace(
        "    x.unwrap()",
        "    // alem-lint: allow(panic-reach) -- fixture: vetted terminal\n    x.unwrap()",
    );
    let out = analyze(&[
        (
            "crates/core/src/chain_entry.rs",
            fixture("sem_chain_entry.rs"),
        ),
        ("crates/core/src/chain_mid.rs", mid),
    ]);
    assert!(out.is_empty(), "{out:#?}");
}

#[test]
fn index_reach_flags_raw_indexing_in_orchestration_crates_only() {
    let out = analyze(&[("crates/serve/src/pool_index.rs", fixture("sem_index.rs"))]);
    assert_eq!(out.len(), 1, "{out:#?}");
    let f = &out[0];
    assert_eq!(
        (f.rule, f.path.as_str(), f.line, f.col),
        ("index-reach", "crates/serve/src/pool_index.rs", 4, 8)
    );
    assert_eq!(
        f.message,
        "pub API `serve::pool_index::slot` can reach an unchecked slice index: \
         serve::pool_index::slot: slice index"
    );
    assert_eq!(
        frames(f),
        vec![(
            "serve::pool_index::slot",
            "crates/serve/src/pool_index.rs",
            5,
            "slice index"
        )]
    );
    // The same file in a numeric-kernel crate is the sanctioned idiom.
    let kernel = analyze(&[("crates/linalg/src/pool_index.rs", fixture("sem_index.rs"))]);
    assert!(kernel.is_empty(), "{kernel:#?}");
}

#[test]
fn determinism_taint_traces_wall_clock_into_sessionmachine_transition() {
    let out = analyze(&[
        (
            "crates/core/src/machine_hot.rs",
            fixture("sem_taint_machine.rs"),
        ),
        ("crates/datagen/src/noise.rs", fixture("sem_taint_src.rs")),
    ]);
    assert_eq!(out.len(), 1, "{out:#?}");
    let f = &out[0];
    assert_eq!(
        (f.rule, f.path.as_str(), f.line, f.col),
        ("determinism-taint", "crates/core/src/machine_hot.rs", 9, 12)
    );
    assert_eq!(
        f.message,
        "nondeterminism can reach SessionMachine transition \
         `core::machine_hot::SessionMachine::step`: \
         core::machine_hot::SessionMachine::step -> datagen::noise::jitter: wall clock"
    );
    assert_eq!(
        frames(f),
        vec![
            (
                "core::machine_hot::SessionMachine::step",
                "crates/core/src/machine_hot.rs",
                9,
                ""
            ),
            (
                "datagen::noise::jitter",
                "crates/datagen/src/noise.rs",
                5,
                "wall clock"
            ),
        ]
    );
}

#[test]
fn lock_discipline_flags_serialization_under_registry_lock() {
    let out = analyze(&[(
        "crates/serve/src/registry_dump.rs",
        fixture("sem_locks_ser.rs"),
    )]);
    assert_eq!(out.len(), 1, "{out:#?}");
    let f = &out[0];
    assert_eq!(
        (f.rule, f.path.as_str(), f.line, f.col),
        (
            "lock-discipline",
            "crates/serve/src/registry_dump.rs",
            17,
            9
        )
    );
    assert_eq!(
        f.message,
        "serialization `render_rows` while `sessions` lock is held: \
         serve::registry_dump::RegistryDump::dump"
    );
    assert_eq!(
        frames(f),
        vec![(
            "serve::registry_dump::RegistryDump::dump",
            "crates/serve/src/registry_dump.rs",
            17,
            "holds `sessions`; render_rows"
        )]
    );
}

#[test]
fn lock_discipline_flags_both_sides_of_an_order_cycle() {
    let out = analyze(&[(
        "crates/obs/src/lock_order.rs",
        fixture("sem_locks_order.rs"),
    )]);
    assert_eq!(out.len(), 2, "{out:#?}");
    let f1 = &out[0];
    assert_eq!(
        (f1.rule, f1.path.as_str(), f1.line, f1.col),
        ("lock-discipline", "crates/obs/src/lock_order.rs", 18, 29)
    );
    assert_eq!(
        f1.message,
        "lock-order cycle: `fleets` acquired while `corpora` is held in \
         `obs::lock_order::LockOrder::forward`, but the opposite order exists \
         elsewhere in the workspace"
    );
    assert_eq!(
        frames(f1),
        vec![(
            "obs::lock_order::LockOrder::forward",
            "crates/obs/src/lock_order.rs",
            18,
            "corpora -> fleets"
        )]
    );
    let f2 = &out[1];
    assert_eq!(
        (f2.rule, f2.path.as_str(), f2.line, f2.col),
        ("lock-discipline", "crates/obs/src/lock_order.rs", 25, 30)
    );
    assert_eq!(
        f2.message,
        "lock-order cycle: `corpora` acquired while `fleets` is held in \
         `obs::lock_order::LockOrder::backward`, but the opposite order exists \
         elsewhere in the workspace"
    );
}

#[test]
fn lock_discipline_flags_same_class_reacquisition() {
    let src = "pub struct R {\n    m: std::sync::Mutex<u32>,\n}\n\n\
               impl R {\n    pub fn f(&self) -> u32 {\n        \
               let a = self.m.lock().unwrap();\n        \
               let b = self.m.lock().unwrap();\n        *a + *b\n    }\n}\n";
    let out = analyze(&[("crates/obs/src/relock.rs", src.to_string())]);
    assert_eq!(out.len(), 1, "{out:#?}");
    let f = &out[0];
    assert_eq!(
        (f.rule, f.path.as_str(), f.line, f.col),
        ("lock-discipline", "crates/obs/src/relock.rs", 8, 24)
    );
    assert_eq!(
        f.message,
        "lock `m` re-acquired in `obs::relock::R::f` while already held \
         (non-reentrant: self-deadlock)"
    );
}
