//! Training-set views and resampling helpers shared by the trainers.

use rand::Rng;

/// A borrowed view of a labeled training set: one dense feature row per
/// example plus a Boolean label (`true` = match).
#[derive(Debug, Clone, Copy)]
pub struct TrainSet<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [bool],
}

impl<'a> TrainSet<'a> {
    /// Wrap features and labels.
    ///
    /// # Panics
    /// Panics when lengths differ or feature rows are ragged.
    pub fn new(xs: &'a [Vec<f64>], ys: &'a [bool]) -> Self {
        assert_eq!(xs.len(), ys.len(), "features/labels length mismatch");
        if let Some(first) = xs.first() {
            let d = first.len();
            assert!(xs.iter().all(|row| row.len() == d), "ragged feature matrix");
        }
        TrainSet { xs, ys }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality (0 for an empty set).
    pub fn dim(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }

    /// Feature row of example `i`.
    pub fn x(&self, i: usize) -> &'a [f64] {
        &self.xs[i]
    }

    /// Label of example `i`.
    pub fn y(&self, i: usize) -> bool {
        self.ys[i]
    }

    /// Label as ±1.0, the form hinge-loss training wants.
    pub fn y_signed(&self, i: usize) -> f64 {
        if self.ys[i] {
            1.0
        } else {
            -1.0
        }
    }

    /// All feature rows.
    pub fn features(&self) -> &'a [Vec<f64>] {
        self.xs
    }

    /// All labels.
    pub fn labels(&self) -> &'a [bool] {
        self.ys
    }

    /// Count of positive examples.
    pub fn positives(&self) -> usize {
        self.ys.iter().filter(|&&y| y).count()
    }
}

/// Draw `n` indices with replacement from `0..n` — one bootstrap resample,
/// as used by bagging and the learner-agnostic QBC committee (§4.1).
pub fn bootstrap_indices<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Draw `min(cap, n)` indices with replacement from `0..n` — a bounded
/// bootstrap resample. Partial forest refresh uses this so per-round tree
/// training cost stops scaling with the labeled-pool size.
pub fn bootstrap_indices_capped<R: Rng>(n: usize, cap: usize, rng: &mut R) -> Vec<usize> {
    (0..cap.min(n)).map(|_| rng.gen_range(0..n)).collect()
}

/// Materialize a resampled training set from indices.
pub fn resample(set: &TrainSet<'_>, idx: &[usize]) -> (Vec<Vec<f64>>, Vec<bool>) {
    let xs = idx.iter().map(|&i| set.x(i).to_vec()).collect();
    let ys = idx.iter().map(|&i| set.y(i)).collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trainset_accessors() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ys = vec![true, false];
        let t = TrainSet::new(&xs, &ys);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.x(1), &[3.0, 4.0]);
        assert!(t.y(0));
        assert_eq!(t.y_signed(1), -1.0);
        assert_eq!(t.positives(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let xs = vec![vec![1.0]];
        let ys = vec![true, false];
        TrainSet::new(&xs, &ys);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let xs = vec![vec![1.0], vec![1.0, 2.0]];
        let ys = vec![true, false];
        TrainSet::new(&xs, &ys);
    }

    #[test]
    fn bootstrap_is_seeded_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = bootstrap_indices(50, &mut rng);
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 50));
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(idx, bootstrap_indices(50, &mut rng2));
    }

    #[test]
    fn resample_materializes() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![true, false, true];
        let t = TrainSet::new(&xs, &ys);
        let (rx, ry) = resample(&t, &[2, 0, 2]);
        assert_eq!(rx, vec![vec![3.0], vec![1.0], vec![3.0]]);
        assert_eq!(ry, vec![true, true, true]);
    }
}
