//! Bagged random forests — the paper's best-performing learner family.
//!
//! Each forest bootstraps the training set per tree and trains CART trees
//! of unlimited depth with `log2(D + 1)` random features per split, the
//! Corleone configuration (§4.1.1). The trees double as the QBC committee
//! for learner-aware example selection, so per-tree votes are exposed.

use crate::data::{bootstrap_indices, bootstrap_indices_capped, resample, TrainSet};
use crate::tree::{DecisionTree, FeatureSubset, TreeConfig};
use crate::Classifier;
use alem_par::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`RandomForest`] training.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees (the paper sweeps 2, 10, 20).
    pub n_trees: usize,
    /// Per-tree configuration; defaults to unlimited depth with `Log2`
    /// feature subsets.
    pub tree: TreeConfig,
    /// Whether to bootstrap-resample the training set per tree.
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 10,
            tree: TreeConfig {
                max_depth: None,
                min_samples_split: 2,
                feature_subset: FeatureSubset::Log2,
            },
            bootstrap: true,
        }
    }
}

impl ForestConfig {
    /// Convenience constructor for an `n`-tree forest with paper defaults.
    pub fn with_trees(n_trees: usize) -> Self {
        ForestConfig {
            n_trees,
            ..ForestConfig::default()
        }
    }

    /// Train a forest. Deterministic for a given RNG state.
    pub fn train<R: Rng>(&self, set: &TrainSet<'_>, rng: &mut R) -> RandomForest {
        assert!(self.n_trees >= 1, "forest needs at least one tree");
        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            if self.bootstrap && !set.is_empty() {
                let idx = bootstrap_indices(set.len(), rng);
                let (xs, ys) = resample(set, &idx);
                let sub = TrainSet::new(&xs, &ys);
                trees.push(self.tree.train(&sub, rng));
            } else {
                trees.push(self.tree.train(set, rng));
            }
        }
        RandomForest { trees }
    }

    /// Train a forest in parallel, byte-identical for any thread count.
    ///
    /// Each tree gets its own `StdRng` seeded from a u64 pre-drawn on the
    /// caller's thread, so the tree built at index `i` never depends on
    /// how work was scheduled. Note the RNG *stream* differs from
    /// [`ForestConfig::train`], which threads one generator through all
    /// trees sequentially — `train_with(.., Parallelism::sequential())`
    /// and `train` produce different (equally valid) forests.
    pub fn train_with<R: Rng>(
        &self,
        set: &TrainSet<'_>,
        rng: &mut R,
        par: &Parallelism,
    ) -> RandomForest {
        assert!(self.n_trees >= 1, "forest needs at least one tree");
        let seeds: Vec<u64> = (0..self.n_trees).map(|_| rng.gen()).collect();
        let trees = par.map(&seeds, |&seed| {
            let mut trng = StdRng::seed_from_u64(seed);
            if self.bootstrap && !set.is_empty() {
                let idx = bootstrap_indices(set.len(), &mut trng);
                let (xs, ys) = resample(set, &idx);
                let sub = TrainSet::new(&xs, &ys);
                self.tree.train(&sub, &mut trng)
            } else {
                self.tree.train(set, &mut trng)
            }
        });
        RandomForest { trees }
    }

    /// Partial refresh: retrain only the trees at `members` (caller picks
    /// them deterministically, e.g. by round-robin rotation) on `set`,
    /// leaving every other tree of `forest` untouched. Per-member seeds
    /// are pre-drawn on the caller's thread in member order, so the
    /// result is byte-identical for any thread count.
    ///
    /// `bootstrap_cap` bounds each member's bootstrap resample, which is
    /// what keeps per-round train cost flat as the labeled pool grows
    /// (`None` = full-size resample, the classic bootstrap).
    pub fn refresh_with<R: Rng>(
        &self,
        forest: &RandomForest,
        members: &[usize],
        set: &TrainSet<'_>,
        bootstrap_cap: Option<usize>,
        rng: &mut R,
        par: &Parallelism,
    ) -> RandomForest {
        assert_eq!(
            forest.trees.len(),
            self.n_trees,
            "forest size does not match this config"
        );
        for &m in members {
            assert!(m < self.n_trees, "refresh member {m} out of range");
        }
        let seeds: Vec<u64> = members.iter().map(|_| rng.gen()).collect();
        let jobs: Vec<(usize, u64)> = members.iter().copied().zip(seeds).collect();
        let retrained = par.map(&jobs, |&(_, seed)| {
            let mut trng = StdRng::seed_from_u64(seed);
            if self.bootstrap && !set.is_empty() {
                let idx = match bootstrap_cap {
                    Some(cap) => bootstrap_indices_capped(set.len(), cap, &mut trng),
                    None => bootstrap_indices(set.len(), &mut trng),
                };
                let (xs, ys) = resample(set, &idx);
                let sub = TrainSet::new(&xs, &ys);
                self.tree.train(&sub, &mut trng)
            } else {
                self.tree.train(set, &mut trng)
            }
        });
        let mut trees = forest.trees.clone();
        for (&(m, _), tree) in jobs.iter().zip(retrained) {
            trees[m] = tree;
        }
        RandomForest { trees }
    }
}

/// A trained random forest voting by simple majority.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// The member trees — the learner-aware QBC committee.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees voting positive on `x`.
    pub fn positive_votes(&self, x: &[f64]) -> usize {
        self.trees.iter().filter(|t| t.predict(x)).count()
    }

    /// QBC disagreement variance of Mozafari et al. (§4.1):
    /// `(P/C)(1 - P/C)` where `P` = positive votes, `C` = committee size.
    /// Maximal (0.25) when the committee splits evenly.
    pub fn vote_variance(&self, x: &[f64]) -> f64 {
        let c = self.trees.len() as f64;
        let p = self.positive_votes(x) as f64 / c;
        p * (1.0 - p)
    }

    /// Maximum depth over the member trees (the ensemble-depth metric of
    /// Fig. 18b).
    pub fn depth(&self) -> usize {
        self.trees
            .iter()
            .map(DecisionTree::depth)
            .max()
            .unwrap_or(0)
    }
}

impl Classifier for RandomForest {
    fn decision_value(&self, x: &[f64]) -> f64 {
        let c = self.trees.len() as f64;
        2.0 * (self.positive_votes(x) as f64 / c) - 1.0
    }

    fn positive_probability(&self, x: &[f64]) -> f64 {
        self.positive_votes(x) as f64 / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn banded() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive in a band of feature 0; forests handle this easily.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let v = i as f64 / 120.0;
            xs.push(vec![v, (i % 11) as f64 / 11.0, (i % 5) as f64 / 5.0]);
            ys.push((0.3..0.7).contains(&v));
        }
        (xs, ys)
    }

    #[test]
    fn learns_band() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let forest = ForestConfig::with_trees(10).train(&set, &mut StdRng::seed_from_u64(2));
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| forest.predict(x) == y)
            .count();
        assert!(correct >= 114, "only {correct}/120");
    }

    #[test]
    fn vote_variance_bounds() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let forest = ForestConfig::with_trees(20).train(&set, &mut StdRng::seed_from_u64(2));
        for x in &xs {
            let v = forest.vote_variance(x);
            assert!((0.0..=0.25 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn committee_size_matches_config() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        for n in [2, 10, 20] {
            let f = ForestConfig::with_trees(n).train(&set, &mut StdRng::seed_from_u64(2));
            assert_eq!(f.trees().len(), n);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let a = ForestConfig::with_trees(5).train(&set, &mut StdRng::seed_from_u64(42));
        let b = ForestConfig::with_trees(5).train(&set, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_training_is_thread_count_invariant() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let cfg = ForestConfig::with_trees(7);
        let seq = cfg.train_with(
            &set,
            &mut StdRng::seed_from_u64(3),
            &Parallelism::sequential(),
        );
        for t in [2, 3, 8] {
            let par = cfg.train_with(&set, &mut StdRng::seed_from_u64(3), &Parallelism::fixed(t));
            assert_eq!(seq, par, "threads={t}");
        }
    }

    #[test]
    fn partial_refresh_replaces_only_members() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let cfg = ForestConfig::with_trees(8);
        let base = cfg.train_with(
            &set,
            &mut StdRng::seed_from_u64(5),
            &Parallelism::sequential(),
        );
        let refreshed = cfg.refresh_with(
            &base,
            &[1, 4],
            &set,
            Some(64),
            &mut StdRng::seed_from_u64(6),
            &Parallelism::sequential(),
        );
        assert_eq!(refreshed.trees().len(), 8);
        for (i, (old, new)) in base.trees().iter().zip(refreshed.trees()).enumerate() {
            if i == 1 || i == 4 {
                continue; // retrained members may (and usually do) change
            }
            assert_eq!(old, new, "non-member tree {i} changed");
        }
    }

    #[test]
    fn partial_refresh_is_thread_count_invariant() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let cfg = ForestConfig::with_trees(6);
        let base = cfg.train_with(
            &set,
            &mut StdRng::seed_from_u64(7),
            &Parallelism::sequential(),
        );
        let run = |par: Parallelism| {
            cfg.refresh_with(
                &base,
                &[0, 3, 5],
                &set,
                Some(32),
                &mut StdRng::seed_from_u64(8),
                &par,
            )
        };
        let seq = run(Parallelism::sequential());
        for t in [2, 4, 8] {
            assert_eq!(seq, run(Parallelism::fixed(t)), "threads={t}");
        }
    }

    #[test]
    fn decision_value_sign_matches_majority() {
        let (xs, ys) = banded();
        let set = TrainSet::new(&xs, &ys);
        let f = ForestConfig::with_trees(9).train(&set, &mut StdRng::seed_from_u64(2));
        for x in xs.iter().take(20) {
            let dv = f.decision_value(x);
            let majority = f.positive_votes(x) * 2 > f.trees().len();
            assert_eq!(dv > 0.0, majority);
        }
    }
}
