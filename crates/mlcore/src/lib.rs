//! `mlcore` — the classifier suite behind the alem benchmark framework.
//!
//! Implements the four learner families the SIGMOD 2020 paper plugs into its
//! active-learning pipeline (§1, §4):
//!
//! * [`svm`] — linear SVM trained with SGD on the regularized hinge loss
//!   (Pegasos-style), exposing its weight vector for margin-based selection
//!   and blocking dimensions.
//! * [`nn`] — a one-hidden-layer feed-forward network with ReLU, batch
//!   normalization, dropout and a sigmoid output, trained with SGD +
//!   momentum on the L2 loss, using exactly the paper's hyper-parameters.
//! * [`tree`] / [`forest`] — CART decision trees with random feature
//!   subsets and bagged random forests in the Corleone configuration
//!   (unlimited depth, `log2(D+1)` features per split).
//! * [`rules`] — monotone-DNF rule learner over Boolean
//!   similarity-threshold predicates, in the style of Qian et al.
//!
//! All model families implement [`Classifier`], the minimal surface the
//! active-learning loop needs. Training is deterministic given a seeded
//! RNG, which is what makes the paper's experiments reproducible here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod forest;
pub mod metrics;
pub mod nn;
pub mod rules;
pub mod svm;
pub mod tree;

/// A trained binary classifier over dense feature vectors.
///
/// `decision_value` returns a signed score: positive values predict the
/// positive (match) class and the magnitude expresses confidence. For a
/// linear SVM this is `w·x + b`; for the neural net it is the pre-sigmoid
/// affine output the paper calls the *margin* (§4.2.2); for ensembles it is
/// the vote balance in `[-1, 1]`.
pub trait Classifier {
    /// Signed decision score; `> 0` means the positive class.
    fn decision_value(&self, x: &[f64]) -> f64;

    /// Hard label: `true` = match.
    fn predict(&self, x: &[f64]) -> bool {
        self.decision_value(x) > 0.0
    }

    /// Probability-like confidence of the positive class in `[0, 1]`.
    /// Default squashes the decision value through a sigmoid.
    fn positive_probability(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_value(x)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub(f64);
    impl Classifier for Stub {
        fn decision_value(&self, _x: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_predict_thresholds_at_zero() {
        assert!(Stub(0.1).predict(&[]));
        assert!(!Stub(-0.1).predict(&[]));
        assert!(!Stub(0.0).predict(&[]));
    }

    #[test]
    fn default_probability_is_sigmoid() {
        assert!((Stub(0.0).positive_probability(&[]) - 0.5).abs() < 1e-12);
        assert!(Stub(5.0).positive_probability(&[]) > 0.99);
        assert!(Stub(-5.0).positive_probability(&[]) < 0.01);
    }
}
