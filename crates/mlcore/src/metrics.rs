//! Classification quality metrics: confusion counts, precision, recall, F1.
//!
//! The paper's quality metric is the F1-score over the positive (match)
//! class computed on all post-blocking pairs (§3, "Quality").

/// Confusion-matrix counts for a binary classification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted match, is match.
    pub tp: usize,
    /// Predicted match, is non-match.
    pub fp: usize,
    /// Predicted non-match, is match.
    pub fn_: usize,
    /// Predicted non-match, is non-match.
    pub tn: usize,
}

impl Confusion {
    /// Tally predictions against ground truth.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label mismatch");
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            c.record(p, a);
        }
        c
    }

    /// Record one (prediction, truth) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision of the positive class; 0 when nothing was predicted
    /// positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall of the positive class; 0 when there are no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1-score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Label prediction accuracy (the metric the paper argues is a poor
    /// objective for skewed EM data — kept for completeness).
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total observations tallied.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = Confusion::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=1 fp=1 fn=1 tn=1
        let c =
            Confusion::from_predictions(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn degenerate_cases() {
        let all_neg = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(all_neg.precision(), 0.0);
        assert_eq!(all_neg.recall(), 0.0);
        assert_eq!(all_neg.f1(), 0.0);
        assert_eq!(all_neg.accuracy(), 1.0);
        assert_eq!(Confusion::default().accuracy(), 0.0);
    }

    #[test]
    fn skew_shows_accuracy_f1_gap() {
        // 90 true negatives + 10 missed positives: accuracy 0.9, F1 0 —
        // the paper's argument for F1 on skewed EM data.
        let mut c = Confusion::default();
        for _ in 0..90 {
            c.record(false, false);
        }
        for _ in 0..10 {
            c.record(false, true);
        }
        assert!(c.accuracy() >= 0.9);
        assert_eq!(c.f1(), 0.0);
    }
}
