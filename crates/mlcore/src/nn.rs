//! One-hidden-layer feed-forward network — the paper's non-convex
//! non-linear classifier (§4.2.2).
//!
//! Architecture and training follow the paper exactly: an affine hidden
//! layer with ReLU activation, dropout over half the hidden units, batch
//! normalization before the output layer, a scalar affine output (the
//! *margin*), and a sigmoid producing the match probability. Training
//! minimizes the L2 loss with SGD + momentum (learning rate 0.001, decay
//! 0.99, momentum 0.95) for 50 epochs with mini-batches of 8.

use crate::data::TrainSet;
use crate::Classifier;
use linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

const BN_EPS: f64 = 1e-5;
const BN_RUNNING_MOMENTUM: f64 = 0.9;

/// Hyper-parameters for [`NeuralNet`] training. Defaults are the paper's.
#[derive(Debug, Clone)]
pub struct NnConfig {
    /// Hidden-layer width `h`.
    pub hidden: usize,
    /// Training epochs (paper: 50).
    pub epochs: usize,
    /// Mini-batch size (paper: 8).
    pub batch_size: usize,
    /// Initial SGD learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Per-epoch learning-rate decay constant (paper: 0.99).
    pub decay: f64,
    /// SGD momentum (paper: 0.95).
    pub momentum: f64,
    /// Dropout probability on hidden units (paper: 0.5).
    pub dropout: f64,
}

impl Default for NnConfig {
    fn default() -> Self {
        NnConfig {
            hidden: 16,
            epochs: 50,
            batch_size: 8,
            learning_rate: 0.001,
            decay: 0.99,
            momentum: 0.95,
            dropout: 0.5,
        }
    }
}

/// A trained feed-forward network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NeuralNet {
    w1: Matrix, // hidden × dim
    b1: Vec<f64>,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl NeuralNet {
    /// The affine output before the sigmoid — the paper's margin for
    /// non-convex classifiers (§4.2.2). Ambiguous examples have margin
    /// near 0 (equivalently, probability near 0.5).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.forward_inference(x)
    }

    fn forward_inference(&self, x: &[f64]) -> f64 {
        let mut hidden = self.w1.matvec(x);
        for (h, b) in hidden.iter_mut().zip(&self.b1) {
            *h = (*h + b).max(0.0);
        }
        let mut out = self.b2;
        for (j, &h) in hidden.iter().enumerate() {
            let norm = (h - self.running_mean[j]) / (self.running_var[j] + BN_EPS).sqrt();
            out += self.w2[j] * (self.gamma[j] * norm + self.beta[j]);
        }
        out
    }
}

impl Classifier for NeuralNet {
    fn decision_value(&self, x: &[f64]) -> f64 {
        self.forward_inference(x)
    }
}

impl NnConfig {
    /// Train a network on `set`. Deterministic for a given RNG state.
    pub fn train<R: Rng>(&self, set: &TrainSet<'_>, rng: &mut R) -> NeuralNet {
        let dim = set.dim();
        let h = self.hidden;
        // Xavier-uniform initialization.
        let bound1 = (6.0 / (dim + h).max(1) as f64).sqrt();
        let w1 = Matrix::from_fn(h, dim, |_, _| rng.gen_range(-bound1..=bound1));
        let bound2 = (6.0 / (h + 1) as f64).sqrt();
        let w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-bound2..=bound2)).collect();
        let mut net = NeuralNet {
            w1,
            b1: vec![0.0; h],
            gamma: vec![1.0; h],
            beta: vec![0.0; h],
            running_mean: vec![0.0; h],
            running_var: vec![1.0; h],
            w2,
            b2: 0.0,
        };
        if set.is_empty() || dim == 0 {
            return net;
        }

        // Momentum buffers.
        let mut v_w1 = Matrix::zeros(h, dim);
        let mut v_b1 = vec![0.0; h];
        let mut v_gamma = vec![0.0; h];
        let mut v_beta = vec![0.0; h];
        let mut v_w2 = vec![0.0; h];
        let mut v_b2 = 0.0;

        let mut lr = self.learning_rate;
        let mut order: Vec<usize> = (0..set.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for batch in order.chunks(self.batch_size) {
                self.train_batch(
                    &mut net,
                    set,
                    batch,
                    lr,
                    rng,
                    &mut v_w1,
                    &mut v_b1,
                    &mut v_gamma,
                    &mut v_beta,
                    &mut v_w2,
                    &mut v_b2,
                );
            }
            lr *= self.decay;
        }
        net
    }

    #[allow(clippy::too_many_arguments)]
    fn train_batch<R: Rng>(
        &self,
        net: &mut NeuralNet,
        set: &TrainSet<'_>,
        batch: &[usize],
        lr: f64,
        rng: &mut R,
        v_w1: &mut Matrix,
        v_b1: &mut [f64],
        v_gamma: &mut [f64],
        v_beta: &mut [f64],
        v_w2: &mut [f64],
        v_b2: &mut f64,
    ) {
        let h = self.hidden;
        let m = batch.len();
        let m_f = m as f64;

        // --- Forward pass over the mini-batch ---
        // Shared dropout mask per batch (inverted dropout).
        let keep = 1.0 - self.dropout;
        let mask: Vec<f64> = (0..h)
            .map(|_| {
                if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();

        // Hidden activations after ReLU + dropout: m × h.
        let mut act = vec![vec![0.0f64; h]; m];
        let mut relu_on = vec![vec![false; h]; m];
        for (bi, &i) in batch.iter().enumerate() {
            let z = net.w1.matvec(set.x(i));
            for j in 0..h {
                let pre = z[j] + net.b1[j];
                if pre > 0.0 {
                    relu_on[bi][j] = true;
                    act[bi][j] = pre * mask[j];
                }
            }
        }

        // Batch statistics per hidden unit.
        let mut mu = vec![0.0f64; h];
        let mut var = vec![0.0f64; h];
        for a in &act {
            for j in 0..h {
                mu[j] += a[j];
            }
        }
        for x in &mut mu {
            *x /= m_f;
        }
        for a in &act {
            for j in 0..h {
                let d = a[j] - mu[j];
                var[j] += d * d;
            }
        }
        for x in &mut var {
            *x /= m_f;
        }

        // Update running stats for inference.
        for j in 0..h {
            net.running_mean[j] =
                BN_RUNNING_MOMENTUM * net.running_mean[j] + (1.0 - BN_RUNNING_MOMENTUM) * mu[j];
            net.running_var[j] =
                BN_RUNNING_MOMENTUM * net.running_var[j] + (1.0 - BN_RUNNING_MOMENTUM) * var[j];
        }

        // Normalized activations and output.
        let inv_std: Vec<f64> = var.iter().map(|v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let mut xhat = vec![vec![0.0f64; h]; m];
        let mut margins = vec![0.0f64; m];
        for bi in 0..m {
            let mut out = net.b2;
            for j in 0..h {
                let xh = (act[bi][j] - mu[j]) * inv_std[j];
                xhat[bi][j] = xh;
                out += net.w2[j] * (net.gamma[j] * xh + net.beta[j]);
            }
            margins[bi] = out;
        }

        // --- Backward pass (L2 loss on sigmoid output) ---
        let mut d_margin = vec![0.0f64; m];
        for (bi, &i) in batch.iter().enumerate() {
            let p = 1.0 / (1.0 + (-margins[bi]).exp());
            let y = if set.y(i) { 1.0 } else { 0.0 };
            d_margin[bi] = 2.0 * (p - y) * p * (1.0 - p) / m_f;
        }

        let mut g_w2 = vec![0.0f64; h];
        let mut g_b2 = 0.0f64;
        // Gradient wrt batchnorm output per example: d_margin * w2.
        let mut g_gamma = vec![0.0f64; h];
        let mut g_beta = vec![0.0f64; h];
        let mut d_xhat = vec![vec![0.0f64; h]; m];
        for bi in 0..m {
            g_b2 += d_margin[bi];
            for j in 0..h {
                let bn_out = net.gamma[j] * xhat[bi][j] + net.beta[j];
                g_w2[j] += d_margin[bi] * bn_out;
                let d_bn = d_margin[bi] * net.w2[j];
                g_gamma[j] += d_bn * xhat[bi][j];
                g_beta[j] += d_bn;
                d_xhat[bi][j] = d_bn * net.gamma[j];
            }
        }

        // Batch-norm backward to activations.
        let mut sum_dxhat = vec![0.0f64; h];
        let mut sum_dxhat_xhat = vec![0.0f64; h];
        for bi in 0..m {
            for j in 0..h {
                sum_dxhat[j] += d_xhat[bi][j];
                sum_dxhat_xhat[j] += d_xhat[bi][j] * xhat[bi][j];
            }
        }
        // d_act[bi][j] = inv_std/m * (m*d_xhat - sum_dxhat - xhat*sum_dxhat_xhat)
        let mut g_w1 = Matrix::zeros(net.w1.rows(), net.w1.cols());
        let mut g_b1 = vec![0.0f64; h];
        for (bi, &i) in batch.iter().enumerate() {
            let x = set.x(i);
            for j in 0..h {
                let d_act = inv_std[j] / m_f
                    * (m_f * d_xhat[bi][j] - sum_dxhat[j] - xhat[bi][j] * sum_dxhat_xhat[j]);
                // Through dropout and ReLU.
                if !relu_on[bi][j] || mask[j] == 0.0 {
                    continue;
                }
                let d_pre = d_act * mask[j];
                g_b1[j] += d_pre;
                let row = g_w1.row_mut(j);
                for (cell, &xv) in row.iter_mut().zip(x) {
                    *cell += d_pre * xv;
                }
            }
        }

        // --- SGD with momentum ---
        v_w1.scale(self.momentum);
        v_w1.axpy(-lr, &g_w1);
        net.w1.axpy(1.0, v_w1);
        let upd = |v: &mut [f64], g: &[f64], p: &mut [f64], momentum: f64| {
            for j in 0..v.len() {
                v[j] = momentum * v[j] - lr * g[j];
                p[j] += v[j];
            }
        };
        upd(v_b1, &g_b1, &mut net.b1, self.momentum);
        upd(v_gamma, &g_gamma, &mut net.gamma, self.momentum);
        upd(v_beta, &g_beta, &mut net.beta, self.momentum);
        upd(v_w2, &g_w2, &mut net.w2, self.momentum);
        *v_b2 = self.momentum * *v_b2 - lr * g_b2;
        net.b2 += *v_b2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Non-linearly separable: positive inside a radius.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = i as f64 * 0.7;
            let r = if i % 2 == 0 { 0.3 } else { 1.0 };
            xs.push(vec![r * a.cos(), r * a.sin()]);
            ys.push(r < 0.5);
        }
        (xs, ys)
    }

    fn accuracy(net: &NeuralNet, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| net.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    #[test]
    fn learns_nonlinear_ring() {
        let (xs, ys) = ring();
        let set = TrainSet::new(&xs, &ys);
        let cfg = NnConfig {
            hidden: 32,
            epochs: 400,
            batch_size: 16,
            learning_rate: 0.2,
            momentum: 0.5,
            dropout: 0.0,
            ..NnConfig::default()
        };
        let net = cfg.train(&set, &mut StdRng::seed_from_u64(3));
        let acc = accuracy(&net, &xs, &ys);
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn paper_defaults_make_progress() {
        let (xs, ys) = ring();
        let set = TrainSet::new(&xs, &ys);
        let net = NnConfig::default().train(&set, &mut StdRng::seed_from_u64(3));
        let acc = accuracy(&net, &xs, &ys);
        assert!(acc >= 0.6, "accuracy {acc}");
    }

    #[test]
    fn margin_is_presigmoid_output() {
        let (xs, ys) = ring();
        let set = TrainSet::new(&xs, &ys);
        let net = NnConfig::default().train(&set, &mut StdRng::seed_from_u64(3));
        for x in xs.iter().take(10) {
            let m = net.margin(x);
            let p = net.positive_probability(x);
            let expect = 1.0 / (1.0 + (-m).exp());
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = ring();
        let set = TrainSet::new(&xs, &ys);
        let cfg = NnConfig {
            epochs: 3,
            ..NnConfig::default()
        };
        let a = cfg.train(&set, &mut StdRng::seed_from_u64(77));
        let b = cfg.train(&set, &mut StdRng::seed_from_u64(77));
        for (x, _) in xs.iter().zip(&ys).take(20) {
            assert_eq!(a.margin(x), b.margin(x));
        }
    }

    #[test]
    fn empty_training_set_is_safe() {
        let xs: Vec<Vec<f64>> = vec![];
        let ys: Vec<bool> = vec![];
        let set = TrainSet::new(&xs, &ys);
        let net = NnConfig::default().train(&set, &mut StdRng::seed_from_u64(1));
        let _ = net.margin(&[]);
    }
}
