//! Monotone-DNF rule learner over Boolean predicate features, in the style
//! of Qian et al. (CIKM 2017), the paper's rule-based classifier (§4.3).
//!
//! An EM rule is a disjunction of conjunctions of *atoms*. Each atom is a
//! Boolean feature (`similarity(attr_l, attr_r) >= τ` after the rule
//! featurizer thresholds it), identified here by its feature index; the
//! framework layer owns the human-readable predicate names. Feature vectors
//! are dense `f64` rows where an atom holds iff the value is `> 0.5`,
//! keeping the [`Classifier`] interface uniform across learners.
//!
//! Learning a conjunction is a greedy precision-first search: start from
//! the best single atom and keep appending the atom that most improves
//! training precision (ties broken by positive coverage) until the clause
//! is pure or no atom helps. A DNF is grown clause-by-clause set-cover
//! style over the still-uncovered positives, which is exactly how the
//! LFP/LFN loop accumulates an ensemble of high-precision rules.

use crate::data::TrainSet;
use crate::Classifier;

/// A conjunction of atoms (Boolean feature indices), e.g.
/// `f3 ∧ f17 ∧ f20`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Conjunction {
    atoms: Vec<usize>,
}

impl Conjunction {
    /// Build from atom indices (deduplicated, sorted).
    pub fn new(mut atoms: Vec<usize>) -> Self {
        atoms.sort_unstable();
        atoms.dedup();
        Conjunction { atoms }
    }

    /// The atom feature indices, sorted.
    pub fn atoms(&self) -> &[usize] {
        &self.atoms
    }

    /// Number of atoms — the interpretability unit of Singh et al. (§3).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the conjunction has no atoms (matches everything).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Does the conjunction hold on `x`?
    pub fn matches(&self, x: &[f64]) -> bool {
        self.atoms.iter().all(|&a| x[a] > 0.5)
    }

    /// The Rule-Minus relaxations (§4.3, Fig. 5): every conjunction
    /// obtained by dropping exactly one atom. Used to find Likely False
    /// Negatives. A single-atom rule has no non-trivial relaxations.
    pub fn minus_variants(&self) -> Vec<Conjunction> {
        if self.atoms.len() <= 1 {
            return Vec::new();
        }
        (0..self.atoms.len())
            .map(|drop| {
                Conjunction::new(
                    self.atoms
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != drop)
                        .map(|(_, &a)| a)
                        .collect(),
                )
            })
            .collect()
    }

    /// Training precision and positive coverage of the conjunction.
    #[allow(clippy::needless_range_loop)] // indexes set rows by position
    pub fn precision_coverage(&self, set: &TrainSet<'_>) -> (f64, usize) {
        let mut covered = 0usize;
        let mut correct = 0usize;
        for i in 0..set.len() {
            if self.matches(set.x(i)) {
                covered += 1;
                if set.y(i) {
                    correct += 1;
                }
            }
        }
        let prec = if covered == 0 {
            0.0
        } else {
            correct as f64 / covered as f64
        };
        (prec, correct)
    }
}

/// A monotone DNF: disjunction of conjunctions. Predicts match when any
/// clause holds.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Dnf {
    clauses: Vec<Conjunction>,
}

impl Dnf {
    /// Empty DNF (predicts non-match everywhere).
    pub fn empty() -> Self {
        Dnf::default()
    }

    /// Build from clauses.
    pub fn new(clauses: Vec<Conjunction>) -> Self {
        Dnf { clauses }
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Conjunction] {
        &self.clauses
    }

    /// Append a clause (the LFP/LFN loop accepts rules incrementally).
    pub fn push(&mut self, clause: Conjunction) {
        self.clauses.push(clause);
    }

    /// Total number of atoms counted with repetition across clauses — the
    /// paper's interpretability metric (§6.3).
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(Conjunction::len).sum()
    }

    /// Does any clause hold on `x`?
    pub fn matches(&self, x: &[f64]) -> bool {
        self.clauses.iter().any(|c| c.matches(x))
    }
}

impl Classifier for Dnf {
    fn decision_value(&self, x: &[f64]) -> f64 {
        if self.matches(x) {
            1.0
        } else {
            -1.0
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.matches(x)
    }

    fn positive_probability(&self, x: &[f64]) -> f64 {
        f64::from(u8::from(self.matches(x)))
    }
}

/// Hyper-parameters for greedy DNF learning.
#[derive(Debug, Clone)]
pub struct DnfConfig {
    /// Maximum atoms per conjunction (keeps rules concise).
    pub max_atoms: usize,
    /// Maximum clauses in a learned DNF.
    pub max_clauses: usize,
    /// Candidate clause must reach this training precision to be kept.
    pub min_precision: f64,
    /// Candidate clause must cover at least this many (still-uncovered)
    /// positives.
    pub min_coverage: usize,
}

impl Default for DnfConfig {
    fn default() -> Self {
        DnfConfig {
            max_atoms: 4,
            max_clauses: 16,
            min_precision: 0.85,
            min_coverage: 1,
        }
    }
}

impl DnfConfig {
    /// Greedily learn one high-precision conjunction on `set`, counting
    /// coverage only over positives where `active` is true (the
    /// still-uncovered positives during set-cover). Returns `None` when no
    /// clause reaches the precision/coverage bar.
    #[allow(clippy::needless_range_loop)] // parallel set/active indexing
    pub fn learn_conjunction(&self, set: &TrainSet<'_>, active: &[bool]) -> Option<Conjunction> {
        let dim = set.dim();
        if dim == 0 || set.is_empty() {
            return None;
        }
        let score = |clause: &Conjunction| -> (f64, usize) {
            // Precision over all examples; coverage over active positives.
            let mut covered = 0usize;
            let mut correct = 0usize;
            let mut active_cov = 0usize;
            for i in 0..set.len() {
                if clause.matches(set.x(i)) {
                    covered += 1;
                    if set.y(i) {
                        correct += 1;
                        if active[i] {
                            active_cov += 1;
                        }
                    }
                }
            }
            let prec = if covered == 0 {
                0.0
            } else {
                correct as f64 / covered as f64
            };
            (prec, active_cov)
        };

        // Greedy search, coverage-aware: precision above `min_precision` is
        // "good enough", so candidates are ranked lexicographically by
        // (capped precision, coverage). This prefers general rules like
        // `JaccardSim(title) >= 0.5` over needlessly narrow ones like
        // `title equality`, which matters for recall (narrow rules also
        // starve the LFP/LFN selector of candidates).
        let cap = self.min_precision;
        let key = |prec: f64, cov: usize| -> (f64, usize) { (prec.min(cap), cov) };
        let better = |a: (f64, usize), b: (f64, usize)| -> bool {
            a.0 > b.0 + 1e-12 || ((a.0 - b.0).abs() <= 1e-12 && a.1 > b.1)
        };

        let mut current: Option<(Conjunction, f64, usize)> = None;
        loop {
            let base_atoms: Vec<usize> = current
                .as_ref()
                .map(|(c, _, _)| c.atoms().to_vec())
                .unwrap_or_default();
            if base_atoms.len() >= self.max_atoms {
                break;
            }
            let mut best_step: Option<(Conjunction, f64, usize)> = None;
            for a in 0..dim {
                if base_atoms.contains(&a) {
                    continue;
                }
                let mut atoms = base_atoms.clone();
                atoms.push(a);
                let cand = Conjunction::new(atoms);
                let (prec, cov) = score(&cand);
                if cov < self.min_coverage {
                    continue;
                }
                let is_better = match &best_step {
                    None => true,
                    Some((_, bp, bc)) => better(key(prec, cov), key(*bp, *bc)),
                };
                if is_better {
                    best_step = Some((cand, prec, cov));
                }
            }
            let Some((cand, prec, cov)) = best_step else {
                break;
            };
            let improves = match &current {
                None => true,
                Some((_, cp, cc)) => better(key(prec, cov), key(*cp, *cc)),
            };
            if !improves {
                break;
            }
            let done = prec >= cap;
            current = Some((cand, prec, cov));
            if done {
                break;
            }
        }
        match current {
            Some((clause, prec, cov)) if prec >= self.min_precision && cov >= self.min_coverage => {
                Some(clause)
            }
            _ => None,
        }
    }

    /// Learn a full DNF by set-cover over positives: learn a clause, mark
    /// its positives covered, repeat.
    pub fn train(&self, set: &TrainSet<'_>) -> Dnf {
        let mut dnf = Dnf::empty();
        let mut active: Vec<bool> = set.labels().to_vec(); // positives start active
        for _ in 0..self.max_clauses {
            let Some(clause) = self.learn_conjunction(set, &active) else {
                break;
            };
            for (i, a) in active.iter_mut().enumerate() {
                if *a && clause.matches(set.x(i)) {
                    *a = false;
                }
            }
            dnf.push(clause);
            if active.iter().all(|&a| !a) {
                break;
            }
        }
        dnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boolean rows as f64.
    fn b(bits: &[u8]) -> Vec<f64> {
        bits.iter().map(|&x| f64::from(x)).collect()
    }

    #[test]
    fn conjunction_matches_all_atoms() {
        let c = Conjunction::new(vec![0, 2]);
        assert!(c.matches(&b(&[1, 0, 1])));
        assert!(!c.matches(&b(&[1, 1, 0])));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn minus_variants_drop_one_atom() {
        let c = Conjunction::new(vec![0, 1, 2]);
        let vs = c.minus_variants();
        assert_eq!(vs.len(), 3);
        assert!(vs.contains(&Conjunction::new(vec![1, 2])));
        assert!(Conjunction::new(vec![5]).minus_variants().is_empty());
    }

    #[test]
    fn dnf_is_disjunction() {
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![0]),
            Conjunction::new(vec![1, 2]),
        ]);
        assert!(dnf.matches(&b(&[1, 0, 0])));
        assert!(dnf.matches(&b(&[0, 1, 1])));
        assert!(!dnf.matches(&b(&[0, 1, 0])));
        assert_eq!(dnf.atom_count(), 3);
    }

    #[test]
    fn learns_single_clause_rule() {
        // y = f0 ∧ f1; f2 is noise.
        let xs = vec![
            b(&[1, 1, 0]),
            b(&[1, 1, 1]),
            b(&[1, 0, 1]),
            b(&[0, 1, 1]),
            b(&[0, 0, 0]),
            b(&[1, 1, 0]),
        ];
        let ys = vec![true, true, false, false, false, true];
        let set = TrainSet::new(&xs, &ys);
        let dnf = DnfConfig::default().train(&set);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(dnf.matches(x), y);
        }
        assert!(dnf.atom_count() <= 3, "rule not concise: {dnf:?}");
    }

    #[test]
    fn learns_two_clause_rule() {
        // y = f0 ∨ (f1 ∧ f2).
        let xs = vec![
            b(&[1, 0, 0]),
            b(&[1, 1, 0]),
            b(&[0, 1, 1]),
            b(&[0, 1, 0]),
            b(&[0, 0, 1]),
            b(&[0, 0, 0]),
        ];
        let ys = vec![true, true, true, false, false, false];
        let set = TrainSet::new(&xs, &ys);
        let dnf = DnfConfig::default().train(&set);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(dnf.matches(x), y, "x={x:?}");
        }
        assert!(dnf.clauses().len() >= 2);
    }

    #[test]
    fn respects_min_precision() {
        // No conjunction reaches precision 1.0: f0 fires on a negative too.
        let xs = vec![b(&[1]), b(&[1]), b(&[1]), b(&[0])];
        let ys = vec![true, true, false, false];
        let set = TrainSet::new(&xs, &ys);
        let strict = DnfConfig {
            min_precision: 0.9,
            ..DnfConfig::default()
        };
        assert!(strict.train(&set).clauses().is_empty());
        let lax = DnfConfig {
            min_precision: 0.6,
            ..DnfConfig::default()
        };
        assert_eq!(lax.train(&set).clauses().len(), 1);
    }

    #[test]
    fn empty_dnf_predicts_negative() {
        let dnf = Dnf::empty();
        assert!(!dnf.predict(&b(&[1, 1])));
        assert_eq!(dnf.decision_value(&b(&[1, 1])), -1.0);
    }

    #[test]
    fn precision_coverage_reports() {
        let xs = vec![b(&[1]), b(&[1]), b(&[0])];
        let ys = vec![true, false, true];
        let set = TrainSet::new(&xs, &ys);
        let c = Conjunction::new(vec![0]);
        let (p, cov) = c.precision_coverage(&set);
        assert_eq!(p, 0.5);
        assert_eq!(cov, 1);
    }
}
