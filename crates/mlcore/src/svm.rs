//! Linear support vector machine trained by stochastic gradient descent on
//! the L2-regularized hinge loss (Pegasos).
//!
//! The trained model exposes its weight vector and bias — margin-based
//! example selection needs `|w·x + b|` (paper §4.2.1) and the selection-time
//! blocking optimization needs the top-K `|w|` dimensions (paper §5.1).

use crate::data::TrainSet;
use crate::Classifier;
use linalg::vector::{dot, scale};
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters for [`LinearSvm`] training.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// L2 regularization strength λ in the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the (shuffled) training data.
    pub epochs: usize,
    /// Multiplier on the hinge gradient of positive examples; values > 1
    /// compensate class skew. 1.0 = unweighted.
    pub positive_weight: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 40,
            positive_weight: 1.0,
        }
    }
}

impl SvmConfig {
    /// Train a linear SVM on `set`. Deterministic for a given RNG state.
    ///
    /// Returns a zero model for an empty training set (it predicts
    /// non-match everywhere, matching the paper's cold-start behaviour
    /// before the seed labels arrive).
    pub fn train<R: Rng>(&self, set: &TrainSet<'_>, rng: &mut R) -> LinearSvm {
        self.train_weighted(set, None, rng)
    }

    /// Train with optional per-example importance weights (IWAL-style
    /// inverse-propensity weights). `None` = uniform weights; otherwise
    /// `weights.len()` must equal `set.len()`.
    pub fn train_weighted<R: Rng>(
        &self,
        set: &TrainSet<'_>,
        weights: Option<&[f64]>,
        rng: &mut R,
    ) -> LinearSvm {
        let dim = set.dim();
        let state = SvmWarmState::zero(dim);
        if set.is_empty() || dim == 0 {
            return LinearSvm {
                weights: state.weights,
                bias: state.bias,
            };
        }
        let out = self.run_epochs(set, weights, state, self.epochs, rng);
        LinearSvm {
            weights: out.weights,
            bias: out.bias,
        }
    }

    /// Continue Pegasos from a previous round's optimizer state: `epochs`
    /// more passes over `set`, with the step-size schedule `η = 1/(λt)`
    /// resuming at `state.t` instead of restarting — the warm rounds are
    /// a continuation of one long optimization, not a fresh solve.
    ///
    /// Returns the refined model and the state to carry into the next
    /// round. `state.weights.len()` must equal `set.dim()` (or the set
    /// must be empty, which returns the state unchanged).
    pub fn train_warm<R: Rng>(
        &self,
        set: &TrainSet<'_>,
        state: SvmWarmState,
        epochs: usize,
        rng: &mut R,
    ) -> (LinearSvm, SvmWarmState) {
        if set.is_empty() || set.dim() == 0 {
            let model = LinearSvm {
                weights: state.weights.clone(),
                bias: state.bias,
            };
            return (model, state);
        }
        assert_eq!(state.weights.len(), set.dim(), "warm state/dim mismatch");
        let out = self.run_epochs(set, None, state, epochs, rng);
        let model = LinearSvm {
            weights: out.weights.clone(),
            bias: out.bias,
        };
        (model, out)
    }

    /// The Pegasos inner loop, shared by cold and warm training: `epochs`
    /// shuffled passes over `set` continuing from `state`.
    fn run_epochs<R: Rng>(
        &self,
        set: &TrainSet<'_>,
        weights: Option<&[f64]>,
        state: SvmWarmState,
        epochs: usize,
        rng: &mut R,
    ) -> SvmWarmState {
        if let Some(ws) = weights {
            assert_eq!(ws.len(), set.len(), "weight/example mismatch");
        }
        let SvmWarmState {
            weights: mut w,
            bias: mut b,
            mut t,
        } = state;
        let n = set.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let x = set.x(i);
                let y = set.y_signed(i);
                let margin = y * (dot(&w, x) + b);
                // Regularization shrink (bias is conventionally unshrunk).
                scale(1.0 - eta * self.lambda, &mut w);
                if margin < 1.0 {
                    let cw = if set.y(i) { self.positive_weight } else { 1.0 };
                    let iw = weights.map_or(1.0, |ws| ws[i]);
                    let step = eta * cw * iw * y;
                    for (wj, xj) in w.iter_mut().zip(x) {
                        *wj += step * xj;
                    }
                    b += step;
                }
            }
        }
        SvmWarmState {
            weights: w,
            bias: b,
            t,
        }
    }
}

/// Resumable Pegasos optimizer state: the weight vector, bias, and the
/// global step counter `t` that drives the `η = 1/(λt)` schedule. Carried
/// across AL rounds by warm-started strategies and serialized into
/// session checkpoints so a resumed run continues bit-identically.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SvmWarmState {
    /// Current weight vector.
    pub weights: Vec<f64>,
    /// Current bias.
    pub bias: f64,
    /// Global Pegasos step count so far.
    pub t: u64,
}

impl SvmWarmState {
    /// Cold-start state: zero model, schedule at the beginning.
    pub fn zero(dim: usize) -> Self {
        SvmWarmState {
            weights: vec![0.0; dim],
            bias: 0.0,
            t: 0,
        }
    }

    /// State equivalent to having cold-trained `model` with `cfg` on `n`
    /// examples: the schedule advances by `epochs × n` steps. Lets a
    /// warm-started strategy seed its state from an ordinary first fit.
    pub fn after_cold_fit(model: &LinearSvm, cfg: &SvmConfig, n: usize) -> Self {
        SvmWarmState {
            weights: model.weights().to_vec(),
            bias: model.bias(),
            t: (cfg.epochs * n) as u64,
        }
    }
}

/// A trained linear SVM: `f(x) = w·x + b`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Construct directly from weights and bias (used by tests and by the
    /// active-ensemble union model).
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        LinearSvm { weights, bias }
    }

    /// The separating hyperplane's weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Margin of an example: `|w·x + b|`, the learner-aware ambiguity
    /// measure for margin-based selection (sign ignored per §4.2.1).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.decision_value(x).abs()
    }

    /// Indices of the `k` dimensions with the largest `|w|`, descending —
    /// the blocking dimensions of §5.1.
    pub fn top_weight_dims(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b]
                .abs()
                .partial_cmp(&self.weights[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }
}

impl Classifier for LinearSvm {
    fn decision_value(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive iff x0 > 0.5; x1 is noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 60.0;
            xs.push(vec![v, (i % 7) as f64 / 7.0]);
            ys.push(v > 0.5);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let mut rng = StdRng::seed_from_u64(1);
        let svm = SvmConfig::default().train(&set, &mut rng);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(correct >= 57, "only {correct}/60 correct");
    }

    #[test]
    fn empty_set_gives_zero_model() {
        let xs: Vec<Vec<f64>> = vec![];
        let ys: Vec<bool> = vec![];
        let set = TrainSet::new(&xs, &ys);
        let mut rng = StdRng::seed_from_u64(1);
        let svm = SvmConfig::default().train(&set, &mut rng);
        assert!(!svm.predict(&[]));
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let a = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(9));
        let b = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn warm_training_continues_deterministically() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let cfg = SvmConfig::default();
        let cold = cfg.train(&set, &mut StdRng::seed_from_u64(2));
        let state = SvmWarmState::after_cold_fit(&cold, &cfg, set.len());
        let (a, sa) = cfg.train_warm(&set, state.clone(), 5, &mut StdRng::seed_from_u64(3));
        let (b, sb) = cfg.train_warm(&set, state.clone(), 5, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // The schedule advanced by 5 passes over the set.
        assert_eq!(sa.t, state.t + 5 * set.len() as u64);
        // Warm refinement keeps the model accurate.
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| a.predict(x) == y)
            .count();
        assert!(correct >= 57, "only {correct}/60 correct after warm rounds");
    }

    #[test]
    fn warm_training_with_zero_epochs_is_identity() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let cfg = SvmConfig::default();
        let cold = cfg.train(&set, &mut StdRng::seed_from_u64(2));
        let state = SvmWarmState::after_cold_fit(&cold, &cfg, set.len());
        let (m, s) = cfg.train_warm(&set, state.clone(), 0, &mut StdRng::seed_from_u64(9));
        assert_eq!(m.weights(), cold.weights());
        assert_eq!(m.bias(), cold.bias());
        assert_eq!(s, state);
    }

    #[test]
    fn warm_training_on_empty_set_returns_state_unchanged() {
        let xs: Vec<Vec<f64>> = vec![];
        let ys: Vec<bool> = vec![];
        let set = TrainSet::new(&xs, &ys);
        let state = SvmWarmState {
            weights: vec![1.0, -2.0],
            bias: 0.5,
            t: 77,
        };
        let (m, s) =
            SvmConfig::default().train_warm(&set, state.clone(), 3, &mut StdRng::seed_from_u64(1));
        assert_eq!(m.weights(), &[1.0, -2.0]);
        assert_eq!(s, state);
    }

    #[test]
    fn margin_is_absolute_decision() {
        let svm = LinearSvm::from_parts(vec![1.0, -2.0], 0.5);
        assert_eq!(svm.decision_value(&[1.0, 1.0]), -0.5);
        assert_eq!(svm.margin(&[1.0, 1.0]), 0.5);
    }

    #[test]
    fn top_weight_dims_orders_by_magnitude() {
        let svm = LinearSvm::from_parts(vec![0.1, -3.0, 2.0, 0.0], 0.0);
        assert_eq!(svm.top_weight_dims(2), vec![1, 2]);
        assert_eq!(svm.top_weight_dims(10).len(), 4);
    }

    #[test]
    fn weighted_training_matches_uniform_when_weights_are_one() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let ones = vec![1.0; xs.len()];
        let a = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(4));
        let b =
            SvmConfig::default().train_weighted(&set, Some(&ones), &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn importance_weights_tilt_the_model() {
        // Upweighting one mislabeled-looking point should move the model.
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        // Upweight a boundary example — those violate the hinge during
        // training, so their weight actually shows up in the updates.
        let mut ws = vec![1.0; xs.len()];
        ws[30] = 50.0;
        let uniform = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(4));
        let weighted =
            SvmConfig::default().train_weighted(&set, Some(&ws), &mut StdRng::seed_from_u64(4));
        assert_ne!(uniform, weighted);
    }

    #[test]
    #[should_panic(expected = "weight/example mismatch")]
    fn weighted_training_rejects_bad_lengths() {
        let (xs, ys) = separable();
        let set = TrainSet::new(&xs, &ys);
        let _ =
            SvmConfig::default().train_weighted(&set, Some(&[1.0]), &mut StdRng::seed_from_u64(4));
    }

    #[test]
    fn positive_weight_shifts_boundary_toward_recall() {
        // Skewed data: few positives. A large positive weight should not
        // reduce recall.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            xs.push(vec![v]);
            ys.push(v > 0.9);
        }
        let set = TrainSet::new(&xs, &ys);
        let unweighted = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(3));
        let weighted = SvmConfig {
            positive_weight: 5.0,
            ..SvmConfig::default()
        }
        .train(&set, &mut StdRng::seed_from_u64(3));
        let recall = |m: &LinearSvm| {
            let tp = xs
                .iter()
                .zip(&ys)
                .filter(|(x, &y)| y && m.predict(x))
                .count();
            tp as f64 / ys.iter().filter(|&&y| y).count() as f64
        };
        assert!(recall(&weighted) >= recall(&unweighted));
    }
}
