//! CART decision trees with Gini impurity, threshold splits and optional
//! random feature subsets per node.
//!
//! Configured as in the Corleone system the paper adopts (§4.1.1): random
//! trees of unlimited depth that consider `log2(D + 1)` randomly chosen
//! features at each split. The node structure is public so the
//! interpretability evaluation can convert match-paths to DNF formulas
//! (paper §6.3).

use crate::data::TrainSet;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::Rng;

/// How many features a node considers when searching for the best split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSubset {
    /// All features (classic CART).
    All,
    /// `floor(log2(D + 1))` random features — the Corleone/Weka
    /// RandomTree setting used by the paper.
    Log2,
    /// `floor(sqrt(D))` random features — the common random-forest default,
    /// included for the ablation benchmark.
    Sqrt,
    /// A fixed count (clamped to `D`).
    Fixed(usize),
}

impl FeatureSubset {
    /// Resolve to a concrete count for dimensionality `dim`.
    pub fn count(self, dim: usize) -> usize {
        let c = match self {
            FeatureSubset::All => dim,
            FeatureSubset::Log2 => ((dim as f64 + 1.0).log2().floor() as usize).max(1),
            FeatureSubset::Sqrt => ((dim as f64).sqrt().floor() as usize).max(1),
            FeatureSubset::Fixed(k) => k.max(1),
        };
        c.min(dim).max(1)
    }
}

/// Hyper-parameters for [`DecisionTree`] training.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth; `None` = unlimited (the paper's setting).
    pub max_depth: Option<usize>,
    /// Nodes with fewer examples become leaves.
    pub min_samples_split: usize,
    /// Feature subsampling policy per node.
    pub feature_subset: FeatureSubset,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            feature_subset: FeatureSubset::All,
        }
    }
}

/// A node of a trained tree. `Split` sends `x[feature] <= threshold` left.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Node {
    /// Terminal node predicting `label` with the training-set positive
    /// fraction retained for soft scores.
    Leaf {
        /// Majority label at this leaf.
        label: bool,
        /// Fraction of training positives that reached this leaf.
        positive_fraction: f64,
    },
    /// Internal binary split on one feature.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Examples with `x[feature] <= threshold` go left.
        threshold: f64,
        /// Left subtree (`<=`).
        left: Box<Node>,
        /// Right subtree (`>`).
        right: Box<Node>,
    },
}

impl Node {
    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecisionTree {
    root: Node,
    dim: usize,
}

impl DecisionTree {
    /// Root node (public for DNF conversion in the interpretability
    /// evaluator).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Feature dimensionality the tree was trained on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.root.leaves()
    }

    /// Positive-class probability from the reached leaf's training
    /// composition.
    pub fn positive_fraction(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf {
                    positive_fraction, ..
                } => return *positive_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn decision_value(&self, x: &[f64]) -> f64 {
        2.0 * self.positive_fraction(x) - 1.0
    }

    fn predict(&self, x: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn positive_probability(&self, x: &[f64]) -> f64 {
        self.positive_fraction(x)
    }
}

impl TreeConfig {
    /// Train a decision tree. Deterministic for a given RNG state.
    pub fn train<R: Rng>(&self, set: &TrainSet<'_>, rng: &mut R) -> DecisionTree {
        let dim = set.dim();
        let idx: Vec<usize> = (0..set.len()).collect();
        let root = if idx.is_empty() || dim == 0 {
            Node::Leaf {
                label: false,
                positive_fraction: 0.0,
            }
        } else {
            self.build(set, idx, 0, rng)
        };
        DecisionTree { root, dim }
    }

    fn build<R: Rng>(
        &self,
        set: &TrainSet<'_>,
        idx: Vec<usize>,
        depth: usize,
        rng: &mut R,
    ) -> Node {
        let pos = idx.iter().filter(|&&i| set.y(i)).count();
        let n = idx.len();
        let frac = pos as f64 / n as f64;
        let make_leaf = || Node::Leaf {
            label: 2 * pos > n,
            positive_fraction: frac,
        };
        let pure = pos == 0 || pos == n;
        let too_deep = self.max_depth.is_some_and(|d| depth >= d);
        if pure || too_deep || n < self.min_samples_split {
            return make_leaf();
        }
        let dim = set.dim();
        let k = self.feature_subset.count(dim);
        let mut feats: Vec<usize> = (0..dim).collect();
        feats.shuffle(rng);
        feats.truncate(k);

        let Some((feature, threshold)) = best_split(set, &idx, &feats) else {
            return make_leaf();
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| set.x(i)[feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf();
        }
        let left = self.build(set, left_idx, depth + 1, rng);
        let right = self.build(set, right_idx, depth + 1, rng);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

/// Find the `(feature, threshold)` with the lowest weighted Gini impurity
/// among the candidate features, or `None` when no split separates anything.
fn best_split(set: &TrainSet<'_>, idx: &[usize], feats: &[usize]) -> Option<(usize, f64)> {
    let n = idx.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None;
    let mut vals: Vec<(f64, bool)> = Vec::with_capacity(idx.len());
    for &f in feats {
        vals.clear();
        vals.extend(idx.iter().map(|&i| (set.x(i)[f], set.y(i))));
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total_pos = vals.iter().filter(|(_, y)| *y).count() as f64;
        let mut left_n = 0.0;
        let mut left_pos = 0.0;
        for w in 0..vals.len() - 1 {
            left_n += 1.0;
            if vals[w].1 {
                left_pos += 1.0;
            }
            // Candidate threshold only between distinct values.
            if vals[w].0 == vals[w + 1].0 {
                continue;
            }
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let gini = |cnt: f64, pos: f64| -> f64 {
                if cnt == 0.0 {
                    return 0.0;
                }
                let p = pos / cnt;
                2.0 * p * (1.0 - p)
            };
            let weighted =
                left_n / n * gini(left_n, left_pos) + right_n / n * gini(right_n, right_pos);
            let thr = 0.5 * (vals[w].0 + vals[w + 1].0);
            if best.is_none_or(|(g, _, _)| weighted < g) {
                best = Some((weighted, f, thr));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        // XOR-ish: positive iff exactly one coordinate is high. Linear
        // models fail; a depth-2 tree nails it.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    xs.push(vec![a as f64, b as f64]);
                    ys.push((a ^ b) == 1);
                }
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_xor_perfectly() {
        let (xs, ys) = xor_data();
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(5));
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_leaf() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![true, true];
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(5));
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict(&[0.5]));
        assert_eq!(tree.positive_fraction(&[0.5]), 1.0);
    }

    #[test]
    fn max_depth_caps_depth() {
        let (xs, ys) = xor_data();
        let set = TrainSet::new(&xs, &ys);
        let cfg = TreeConfig {
            max_depth: Some(1),
            ..TreeConfig::default()
        };
        let tree = cfg.train(&set, &mut StdRng::seed_from_u64(5));
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn empty_set_predicts_negative() {
        let xs: Vec<Vec<f64>> = vec![];
        let ys: Vec<bool> = vec![];
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(5));
        assert!(!tree.predict(&[]));
    }

    #[test]
    fn feature_subset_counts() {
        assert_eq!(FeatureSubset::All.count(63), 63);
        assert_eq!(FeatureSubset::Log2.count(63), 6);
        assert_eq!(FeatureSubset::Sqrt.count(64), 8);
        assert_eq!(FeatureSubset::Fixed(100).count(10), 10);
        assert_eq!(FeatureSubset::Log2.count(1), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = xor_data();
        let set = TrainSet::new(&xs, &ys);
        let cfg = TreeConfig {
            feature_subset: FeatureSubset::Log2,
            ..TreeConfig::default()
        };
        let a = cfg.train(&set, &mut StdRng::seed_from_u64(11));
        let b = cfg.train(&set, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn leaves_count() {
        let (xs, ys) = xor_data();
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(5));
        assert!(tree.leaves() >= 3);
    }
}
