//! Property-based tests on classifier invariants.

use mlcore::data::TrainSet;
use mlcore::forest::ForestConfig;
use mlcore::metrics::Confusion;
use mlcore::rules::{Conjunction, Dnf};
use mlcore::svm::LinearSvm;
use mlcore::tree::TreeConfig;
use mlcore::Classifier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forest decision-value sign always agrees with the majority vote,
    /// and probabilities stay in [0, 1].
    #[test]
    fn forest_sign_matches_majority(
        labels in prop::collection::vec(any::<bool>(), 10..60),
        n_trees in 1usize..12,
        seed in 0u64..50,
    ) {
        let n = labels.len();
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 5) as f64])
            .collect();
        let set = TrainSet::new(&xs, &labels);
        let mut rng = StdRng::seed_from_u64(seed);
        let forest = ForestConfig::with_trees(n_trees).train(&set, &mut rng);
        for x in &xs {
            let votes = forest.positive_votes(x);
            prop_assert!(votes <= n_trees);
            let majority = 2 * votes > n_trees;
            prop_assert_eq!(forest.decision_value(x) > 0.0, majority);
            let p = forest.positive_probability(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// An unlimited-depth tree fits consistent training data perfectly
    /// when all feature rows are distinct.
    #[test]
    fn tree_fits_distinct_rows_perfectly(
        labels in prop::collection::vec(any::<bool>(), 4..50),
        seed in 0u64..50,
    ) {
        let n = labels.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let set = TrainSet::new(&xs, &labels);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(seed));
        for (x, &y) in xs.iter().zip(&labels) {
            prop_assert_eq!(tree.predict(x), y);
        }
    }

    /// SVM margin is the absolute decision value, and blocking dims are
    /// sorted by |weight| descending.
    #[test]
    fn svm_margin_and_blocking_dims(
        weights in prop::collection::vec(-5.0f64..5.0, 1..30),
        bias in -2.0f64..2.0,
        x in prop::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let d = weights.len().min(x.len());
        let svm = LinearSvm::from_parts(weights[..d].to_vec(), bias);
        let xv = &x[..d];
        prop_assert!((svm.margin(xv) - svm.decision_value(xv).abs()).abs() < 1e-12);
        let dims = svm.top_weight_dims(d);
        for w in dims.windows(2) {
            prop_assert!(
                svm.weights()[w[0]].abs() >= svm.weights()[w[1]].abs() - 1e-12
            );
        }
    }

    /// Conjunction monotonicity: adding an atom can only shrink the match
    /// set; adding a clause to a DNF can only grow it.
    #[test]
    fn dnf_monotonicity(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 6), 1..40),
        atoms in prop::collection::vec(0usize..6, 1..4),
        extra_atom in 0usize..6,
    ) {
        let frows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f64::from(u8::from(b))).collect())
            .collect();
        let small = Conjunction::new(atoms.clone());
        let mut bigger_atoms = atoms.clone();
        bigger_atoms.push(extra_atom);
        let bigger = Conjunction::new(bigger_atoms);
        for x in &frows {
            // bigger has more constraints → matches ⊆ small's matches.
            prop_assert!(!bigger.matches(x) || small.matches(x));
        }
        let d1 = Dnf::new(vec![small.clone()]);
        let d2 = Dnf::new(vec![small, bigger]);
        for x in &frows {
            prop_assert!(!d1.matches(x) || d2.matches(x));
        }
    }

    /// Rule-Minus variants are strict relaxations: anything the full rule
    /// matches, every minus-variant matches too.
    #[test]
    fn rule_minus_relaxes(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 8), 1..30),
        atoms in prop::collection::vec(0usize..8, 2..5),
    ) {
        let rule = Conjunction::new(atoms);
        let frows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f64::from(u8::from(b))).collect())
            .collect();
        for minus in rule.minus_variants() {
            for x in &frows {
                prop_assert!(!rule.matches(x) || minus.matches(x));
            }
        }
    }

    /// Confusion counts partition the observations; metrics are bounded.
    #[test]
    fn confusion_partition(
        preds in prop::collection::vec(any::<bool>(), 0..200),
        seed in 0u64..100,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let actual: Vec<bool> = preds.iter().map(|_| rng.gen()).collect();
        let c = Confusion::from_predictions(&preds, &actual);
        prop_assert_eq!(c.total(), preds.len());
        for m in [c.precision(), c.recall(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    /// Bootstrap resampling preserves dimensionality and length.
    #[test]
    fn bootstrap_shape(n in 1usize..200, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = mlcore::data::bootstrap_indices(n, &mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| i < n));
    }
}
