//! Flight recorder: O(1)-memory ring of per-interval telemetry snapshots.
//!
//! A [`Snapshot`] is a point-in-time copy of every counter, gauge, and
//! histogram in a [`Registry`]; [`Snapshot::delta`] turns two cumulative
//! snapshots into one *interval* snapshot (counter deltas, last gauge
//! values, bucket-wise histogram subtraction — sound because the
//! log-bucket scheme is pointwise mergeable). The [`FlightRecorder`]
//! keeps the last N interval snapshots in a ring, ticked either manually
//! or by a supervised background thread ([`FlightRecorder::start_ticker`]),
//! so the process always holds a bounded window of "what just happened":
//! windowed quantiles for admission control, and a black-box dump
//! ([`FlightRecorder::dump_to_dir`]) written on drain, on caught worker
//! panics, and on abnormal exit — every chaos-run crash leaves a
//! post-mortem artifact.
//!
//! Dump filenames are `<reason>-<pid>-<seq>.jsonl` (process id plus an
//! atomic sequence number — deliberately no wall-clock timestamp, which
//! the determinism lint forbids workspace-wide).

use crate::hist::Histogram;
use crate::{json_escape, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Point-in-time (or per-interval, after [`Snapshot::delta`]) copy of a
/// registry's aggregate metric state. Events are *not* included — the
/// snapshot is O(metric names), not O(events), which is what keeps the
/// flight recorder's memory constant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Registry uptime when the snapshot was taken (µs since epoch).
    pub at_us: u64,
    /// Interval covered (0 for a cumulative snapshot; for a delta, the
    /// µs between the two snapshots).
    pub interval_us: u64,
    /// Counter totals (cumulative) or deltas (interval).
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge levels (last-write-wins; a delta carries the later values).
    pub gauges: BTreeMap<&'static str, u64>,
    /// Per-span-name latency histograms (cumulative or interval).
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// The interval snapshot covering `earlier` → `self`: counter
    /// differences, `self`'s gauge values, and bucket-wise histogram
    /// subtraction. Merging consecutive interval histograms reproduces
    /// the cumulative bucket counts, so windowed quantiles computed from
    /// the ring agree (within bucket resolution) with what a fresh
    /// histogram recording only that window would report.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| {
                (
                    k,
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(&k, h)| match earlier.hists.get(k) {
                Some(prev) => (k, h.delta_since(prev)),
                None => (k, h.clone()),
            })
            .collect();
        Snapshot {
            at_us: self.at_us,
            interval_us: self.at_us.saturating_sub(earlier.at_us),
            counters,
            gauges: self.gauges.clone(),
            hists,
        }
    }
}

struct FlightState {
    /// The most recent cumulative snapshot (delta baseline).
    last: Option<Snapshot>,
    /// Interval snapshots, oldest first.
    ring: VecDeque<Snapshot>,
}

struct FlightInner {
    registry: Registry,
    capacity: usize,
    dump_dir: Option<PathBuf>,
    dump_seq: AtomicU64,
    max_dumps: u64,
    state: Mutex<FlightState>,
}

/// Ring of the last N interval [`Snapshot`]s over a [`Registry`]. Cheap
/// to clone (an `Arc`); all methods are callable from any thread.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.inner.capacity)
            .field("intervals", &self.intervals())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` intervals of `registry`.
    pub fn new(registry: Registry, capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                registry,
                capacity: capacity.max(1),
                dump_dir: None,
                dump_seq: AtomicU64::new(0),
                max_dumps: 32,
                state: Mutex::new(FlightState {
                    last: None,
                    ring: VecDeque::new(),
                }),
            }),
        }
    }

    /// Set the directory [`FlightRecorder::dump_to_dir`] writes into
    /// (created on first dump). Builder-style, call before sharing.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let inner = Arc::get_mut(&mut self.inner)
            // alem-lint: allow(no-panic) -- builder runs before the Arc is shared; obs is panic-exempt anyway
            .expect("with_dump_dir after the recorder was shared");
        inner.dump_dir = Some(dir.into());
        self
    }

    /// The registry this recorder snapshots.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Record one interval: snapshot the registry, push the delta since
    /// the previous tick (or the cumulative state on the first tick),
    /// evict the oldest interval past capacity. No-op when the registry
    /// is disabled.
    pub fn tick(&self) {
        if !self.inner.registry.is_enabled() {
            return;
        }
        let snap = self.inner.registry.snapshot();
        let mut st = self.inner.state.lock().unwrap();
        let delta = match &st.last {
            Some(prev) => snap.delta(prev),
            None => {
                let mut first = snap.clone();
                first.interval_us = snap.at_us;
                first
            }
        };
        st.ring.push_back(delta);
        while st.ring.len() > self.inner.capacity {
            st.ring.pop_front();
        }
        st.last = Some(snap);
    }

    /// Number of intervals currently in the ring.
    pub fn intervals(&self) -> usize {
        self.inner.state.lock().unwrap().ring.len()
    }

    /// Copy of the windowed intervals, oldest first.
    pub fn window(&self) -> Vec<Snapshot> {
        self.inner
            .state
            .lock()
            .unwrap()
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Total µs covered by the window.
    pub fn window_us(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .ring
            .iter()
            .map(|s| s.interval_us)
            .sum()
    }

    /// Sum of counter `name`'s deltas across the window.
    pub fn window_counter(&self, name: &str) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .ring
            .iter()
            .map(|s| s.counters.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// Merge of histogram `name`'s interval histograms across the window
    /// — windowed quantiles, e.g. "p99 over the last N ticks".
    pub fn window_hist(&self, name: &str) -> Histogram {
        let st = self.inner.state.lock().unwrap();
        let mut out = Histogram::new();
        for s in &st.ring {
            if let Some(h) = s.hists.get(name) {
                out.merge(h);
            }
        }
        out
    }

    /// Write the window as JSONL, one object per interval (oldest first).
    pub fn dump<W: Write>(&self, reason: &str, w: &mut W) -> io::Result<()> {
        let window = self.window();
        let reason = json_escape(reason);
        for (i, s) in window.iter().enumerate() {
            write!(
                w,
                "{{\"type\":\"flight\",\"reason\":\"{reason}\",\"seq\":{i},\"at_us\":{},\"interval_us\":{}",
                s.at_us, s.interval_us
            )?;
            write!(w, ",\"counters\":{{")?;
            for (j, (name, v)) in s.counters.iter().enumerate() {
                let sep = if j > 0 { "," } else { "" };
                write!(w, "{sep}\"{name}\":{v}")?;
            }
            write!(w, "}},\"gauges\":{{")?;
            for (j, (name, v)) in s.gauges.iter().enumerate() {
                let sep = if j > 0 { "," } else { "" };
                write!(w, "{sep}\"{name}\":{v}")?;
            }
            write!(w, "}},\"hists\":{{")?;
            for (j, (name, h)) in s.hists.iter().enumerate() {
                let sep = if j > 0 { "," } else { "" };
                write!(
                    w,
                    "{sep}\"{name}\":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                    h.count(),
                    h.sum(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99)
                )?;
            }
            writeln!(w, "}}}}")?;
        }
        Ok(())
    }

    /// Write a black-box dump `<reason>-<pid>-<seq>.jsonl` into the
    /// configured dump directory (atomic via tmp + rename). Returns the
    /// path, or `None` when no dump dir is configured or the per-process
    /// dump cap was reached (a panic storm must not fill the disk).
    /// Counts `obs.flight.dumps` on the registry for each file written.
    pub fn dump_to_dir(&self, reason: &str) -> io::Result<Option<PathBuf>> {
        let Some(dir) = &self.inner.dump_dir else {
            return Ok(None);
        };
        let seq = self.inner.dump_seq.fetch_add(1, Ordering::SeqCst);
        if seq >= self.inner.max_dumps {
            return Ok(None);
        }
        self.dump_to_path(reason, dir, seq).map(Some)
    }

    fn dump_to_path(&self, reason: &str, dir: &Path, seq: u64) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let stem = format!("{reason}-{}-{seq}", std::process::id());
        let tmp = dir.join(format!("{stem}.tmp"));
        let path = dir.join(format!("{stem}.jsonl"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            self.dump(reason, &mut f)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.inner.registry.counter_add("obs.flight.dumps", 1);
        Ok(path)
    }

    /// Start a supervised background thread ticking every `interval`.
    /// The thread is named `obs.flight`; stop it with
    /// [`FlightTicker::stop`] (dropping the ticker detaches the thread,
    /// which is fine for daemons that run until process exit).
    pub fn start_ticker(&self, interval: Duration) -> io::Result<FlightTicker> {
        let stop = Arc::new(AtomicBool::new(false));
        let rec = self.clone();
        let thread_stop = Arc::clone(&stop);
        let handle = alem_par::supervised::spawn("obs.flight", move || {
            while !thread_stop.load(Ordering::SeqCst) {
                let mut slept = Duration::ZERO;
                while slept < interval && !thread_stop.load(Ordering::SeqCst) {
                    let step = (interval - slept).min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    slept += step;
                }
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                rec.tick();
            }
        })?;
        Ok(FlightTicker { stop, handle })
    }
}

/// Handle to the background tick thread from
/// [`FlightRecorder::start_ticker`].
pub struct FlightTicker {
    stop: Arc<AtomicBool>,
    handle: alem_par::supervised::Supervised<()>,
}

impl FlightTicker {
    /// Signal the thread and join it; a panic comes back as data.
    pub fn stop(self) -> Result<(), alem_par::supervised::Panicked> {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join()
    }
}

/// Render a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// `summary` families with `quantile`-labeled samples plus `_sum` and
/// `_count`. Dotted metric names are sanitized to underscores. Counter
/// families listed in `required_counters` are emitted with value 0 even
/// if never incremented, so scrape-side presence checks (and
/// `validate_metrics.py --require`) never depend on traffic having
/// happened.
pub fn render_prometheus(snap: &Snapshot, required_counters: &[&str]) -> String {
    let mut out = String::new();
    let mut counters: BTreeMap<String, u64> = snap
        .counters
        .iter()
        .map(|(&k, &v)| (sanitize_metric_name(k), v))
        .collect();
    for name in required_counters {
        counters.entry(sanitize_metric_name(name)).or_insert(0);
    }
    for (name, v) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snap.hists {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum()));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// (notably the workspace's dots) becomes `_`.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_and_hists() {
        let reg = Registry::enabled();
        reg.counter_add("x.a", 3);
        reg.span("x.lat").finish();
        let first = reg.snapshot();
        reg.counter_add("x.a", 4);
        reg.counter_add("x.b", 1);
        reg.span("x.lat").finish();
        reg.gauge_set("x.g", 9);
        let second = reg.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.counters.get("x.a"), Some(&4));
        assert_eq!(d.counters.get("x.b"), Some(&1));
        assert_eq!(d.gauges.get("x.g"), Some(&9));
        assert_eq!(d.hists.get("x.lat").unwrap().count(), 1);
        assert!(d.at_us >= first.at_us);
    }

    #[test]
    fn ring_is_bounded_and_windowed_sums_add_up() {
        let reg = Registry::enabled();
        let fr = FlightRecorder::new(reg.clone(), 3);
        for i in 0..5 {
            reg.counter_add("t.n", 2);
            if i >= 2 {
                reg.span("t.lat").finish();
            }
            fr.tick();
        }
        assert_eq!(fr.intervals(), 3);
        // Window covers the last 3 ticks: 3 × 2 counter increments.
        assert_eq!(fr.window_counter("t.n"), 6);
        assert_eq!(fr.window_hist("t.lat").count(), 3);
    }

    #[test]
    fn disabled_registry_ticks_are_noops() {
        let fr = FlightRecorder::new(Registry::disabled(), 4);
        fr.tick();
        assert_eq!(fr.intervals(), 0);
        let mut buf = Vec::new();
        fr.dump("test", &mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn dump_writes_one_line_per_interval() {
        let reg = Registry::enabled();
        let fr = FlightRecorder::new(reg.clone(), 8);
        reg.counter_add("d.hits", 1);
        fr.tick();
        reg.counter_add("d.hits", 2);
        fr.tick();
        let mut buf = Vec::new();
        fr.dump("postmortem", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"reason\":\"postmortem\""));
        assert!(lines[0].contains("\"d.hits\":1"));
        assert!(lines[1].contains("\"d.hits\":2"));
    }

    #[test]
    fn dump_to_dir_caps_and_counts() {
        let reg = Registry::enabled();
        let dir = std::env::temp_dir().join(format!("alem-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(reg.clone(), 4).with_dump_dir(&dir);
        reg.counter_add("c.x", 1);
        fr.tick();
        let p = fr.dump_to_dir("postmortem").unwrap().expect("first dump");
        assert!(p.exists());
        assert!(p
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("postmortem-"));
        assert_eq!(reg.counter_value("obs.flight.dumps"), 1);
        // No dump dir configured → None, no error.
        let bare = FlightRecorder::new(reg.clone(), 4);
        assert!(bare.dump_to_dir("x").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ticker_ticks_until_stopped() {
        let reg = Registry::enabled();
        let fr = FlightRecorder::new(reg.clone(), 16);
        let ticker = fr.start_ticker(Duration::from_millis(5)).unwrap();
        let t = std::time::Instant::now();
        while fr.intervals() < 2 && t.elapsed() < Duration::from_secs(5) {
            reg.counter_add("tick.work", 1);
            std::thread::sleep(Duration::from_millis(2));
        }
        ticker.stop().unwrap();
        assert!(fr.intervals() >= 2, "ticker never ticked");
    }

    #[test]
    fn prometheus_rendering_covers_all_families() {
        let reg = Registry::enabled();
        reg.counter_add("serve.requests", 2);
        reg.gauge_set("serve.sessions_active", 5);
        reg.span("serve.query_to_batch").finish();
        let text = render_prometheus(&reg.snapshot(), &["serve.never_hit"]);
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 2\n"));
        assert!(text.contains("# TYPE serve_never_hit counter\nserve_never_hit 0\n"));
        assert!(text.contains("# TYPE serve_sessions_active gauge\nserve_sessions_active 5\n"));
        assert!(text.contains("# TYPE serve_query_to_batch summary\n"));
        assert!(text.contains("serve_query_to_batch{quantile=\"0.5\"}"));
        assert!(text.contains("serve_query_to_batch_count 1\n"));
    }
}
