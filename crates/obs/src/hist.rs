//! Log-bucketed latency histogram.
//!
//! Values (microseconds, or any `u64` unit) are assigned to buckets whose
//! width grows geometrically: each power-of-two octave is split into four
//! sub-buckets, so a bucket spanning `[lo, lo + w)` always has `w <= lo / 4`.
//! Quantile estimates use the bucket midpoint, which bounds the relative
//! error of any quantile estimate at 12.5% (half a bucket width over the
//! bucket's lower bound). Merging is pointwise count addition and therefore
//! associative and commutative — per-thread histograms can be combined in
//! any order.

/// Number of buckets: values 0..=3 get exact buckets, then 62 octaves
/// (`msb` 2..=63) of four sub-buckets each.
pub const BUCKETS: usize = 4 + 62 * 4;

/// Fixed-size log-bucketed histogram with min/max/sum tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value: identity below 4, then
/// `4 + (msb - 2) * 4 + sub` where `sub` is the two bits below the msb.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 2)) & 3) as usize;
    4 + (msb - 2) * 4 + sub
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64 + 1);
    }
    let octave = (idx - 4) / 4 + 2;
    let sub = ((idx - 4) % 4) as u64;
    let width = 1u64 << (octave - 2);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo.saturating_add(width))
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket
    /// holding the rank-`ceil(q * count)` observation, clamped to the
    /// observed min/max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Pointwise-add `other` into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Raw count of bucket `idx` (bucket identity is stable across
    /// snapshots, which is what makes pointwise delta/merge sound).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Interval histogram: pointwise `self - earlier`, where `earlier` is
    /// a previous snapshot of the same accumulating histogram. Bucket
    /// counts, `count`, and `sum` subtract exactly; the interval's true
    /// min/max are not recoverable from cumulative state, so they are
    /// re-derived from the bounds of the occupied delta buckets (still
    /// within the bucket scheme's 12.5% quantile error bound). Merging
    /// interval histograms back together reproduces the cumulative bucket
    /// counts — the flight recorder's window quantiles rely on this.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        let mut lo_idx = None;
        let mut hi_idx = None;
        for idx in 0..BUCKETS {
            let d = self.counts[idx].saturating_sub(earlier.counts[idx]);
            out.counts[idx] = d;
            if d > 0 {
                lo_idx.get_or_insert(idx);
                hi_idx = Some(idx);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if let (Some(lo), Some(hi)) = (lo_idx, hi_idx) {
            out.min = bucket_bounds(lo).0.max(self.min.min(earlier.min));
            out.max = (bucket_bounds(hi).1 - 1).min(self.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bounds_and_index_agree() {
        // Every value must land inside the bounds of its own bucket, and
        // bucket bounds must tile the line without gaps.
        for v in [4u64, 5, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (next_lo, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, next_lo, "gap between buckets {idx} and {}", idx + 1);
        }
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        // For idx >= 4: width <= lo / 4, so midpoint error <= 12.5%.
        for idx in 4..BUCKETS - 4 {
            let (lo, hi) = bucket_bounds(idx);
            assert!(hi - lo <= lo / 4, "idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn quantile_is_within_error_bound() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        for &(q, exact_idx) in &[(0.5, 499usize), (0.9, 899), (0.99, 989)] {
            let exact = values[exact_idx] as f64;
            let est = h.quantile(q) as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.125, "q={q}: est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 2000);
    }
}
