//! `alem-obs`: zero-dependency telemetry for the active-learning pipeline.
//!
//! Hand-rolled on `std` only (the build environment has no registry access,
//! so this crate follows the same offline-shim discipline as `vendor/`).
//! It provides:
//!
//! - hierarchical [`Span`]s with wall-clock timing — parent/child nesting is
//!   tracked per thread, and every span close feeds a per-name latency
//!   [`Histogram`];
//! - monotonic **counters** and last-write-wins **gauges**;
//! - two export sinks: a JSONL structured-event writer
//!   ([`Registry::write_jsonl`]) and a Chrome `trace_event` exporter
//!   ([`Registry::write_chrome_trace`]) loadable in `chrome://tracing` or
//!   Perfetto;
//! - an end-of-run summary table ([`Registry::summary`]).
//!
//! The [`Registry`] is cheap to clone (an `Arc`) and thread-safe. A
//! *disabled* registry ([`Registry::disabled`]) skips all bookkeeping:
//! [`Registry::span`] still returns a [`Span`] whose [`Span::finish`]
//! reports the elapsed wall-clock time — so instrumented code uses the span
//! as its single source of timing truth — but nothing is recorded.
//!
//! Telemetry is determinism-neutral by construction: no RNG is consumed and
//! no recorded quantity feeds back into the learner, so enabling sinks
//! cannot change a run's `deterministic_fingerprint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod hist;

pub use flight::{render_prometheus, FlightRecorder, FlightTicker, Snapshot};
pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKETS};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

thread_local! {
    /// Stack of trace frames for the current thread. A frame is `Some(id)`
    /// inside [`trace_scope`] with an id, `None` inside a scope opened
    /// without one — an explicit "no trace" frame masks any outer id, so a
    /// request without a `trace_id` never inherits the previous request's.
    static TRACE_STACK: RefCell<Vec<Option<Arc<str>>>> = const { RefCell::new(Vec::new()) };
}

/// Enter a trace scope on the current thread. Every event recorded on
/// this thread while the returned [`TraceGuard`] is alive carries
/// `trace_id` (spans capture it at open). Passing `None` opens a masking
/// scope: events inside it carry no trace id even if an outer scope has
/// one. Scopes nest; the guard restores the previous frame on drop.
pub fn trace_scope(trace_id: Option<&str>) -> TraceGuard {
    let frame = trace_id.map(Arc::from);
    TRACE_STACK.with(|s| s.borrow_mut().push(frame));
    TraceGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// The trace id active on the current thread, if any.
pub fn current_trace() -> Option<Arc<str>> {
    TRACE_STACK.with(|s| s.borrow().last().cloned().flatten())
}

/// RAII guard for a [`trace_scope`]; pops the thread's trace frame on
/// drop. Deliberately `!Send`: a trace scope belongs to one thread.
pub struct TraceGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// What a recorded [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span: `value` is the duration in microseconds.
    Span,
    /// A counter increment: `value` is the delta added.
    Counter,
    /// A gauge sample: `value` is the new level.
    Gauge,
}

/// One structured telemetry event, recorded at span close or metric update.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind (span close, counter add, gauge set).
    pub kind: EventKind,
    /// Span or metric name.
    pub name: &'static str,
    /// Duration in µs (spans), delta (counters), or level (gauges).
    pub value: u64,
    /// Active-learning iteration the event was recorded in.
    pub iter: u64,
    /// Span id (0 for counter/gauge events).
    pub id: u64,
    /// Enclosing span id (0 = root).
    pub parent: u64,
    /// Event start time in µs since the registry epoch.
    pub ts_us: u64,
    /// Dense per-registry thread index (for trace viewers).
    pub tid: u64,
    /// Client-supplied trace id active when the event was recorded
    /// (spans capture it at open), for cross-thread correlation.
    pub trace: Option<Arc<str>>,
}

#[derive(Default)]
struct State {
    stacks: HashMap<ThreadId, Vec<u64>>,
    tids: HashMap<ThreadId, u64>,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

struct Inner {
    epoch: Instant,
    run_id: Mutex<String>,
    iter: AtomicU64,
    next_span_id: AtomicU64,
    state: Mutex<State>,
}

impl Inner {
    fn thread_ctx(state: &mut State) -> (u64, u64) {
        let tid_key = std::thread::current().id();
        let n = state.tids.len() as u64;
        let tid = *state.tids.entry(tid_key).or_insert(n);
        let parent = state
            .stacks
            .get(&tid_key)
            .and_then(|s| s.last().copied())
            .unwrap_or(0);
        (tid, parent)
    }
}

/// Thread-safe telemetry registry. Clones share the same store.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Registry {
    /// The default registry is disabled (telemetry is opt-in).
    fn default() -> Self {
        Registry::disabled()
    }
}

impl Registry {
    /// A no-op registry: spans still time, nothing is recorded.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// A recording registry with its epoch set to now.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                run_id: Mutex::new(String::new()),
                iter: AtomicU64::new(0),
                next_span_id: AtomicU64::new(1),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a run identifier stamped onto every exported JSONL line.
    pub fn set_run_id(&self, id: &str) {
        if let Some(inner) = &self.inner {
            *inner.run_id.lock().unwrap() = id.to_string();
        }
    }

    /// Set the current active-learning iteration; subsequent events carry it.
    pub fn set_iter(&self, k: u64) {
        if let Some(inner) = &self.inner {
            inner.iter.store(k, Ordering::Relaxed);
        }
    }

    /// Open a span. Always usable: on a disabled registry the returned
    /// [`Span`] still measures elapsed time via [`Span::finish`].
    pub fn span(&self, name: &'static str) -> Span {
        let meta = self.inner.as_ref().map(|inner| {
            let id = inner.next_span_id.fetch_add(1, Ordering::Relaxed);
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            let iter = inner.iter.load(Ordering::Relaxed);
            let trace = current_trace();
            let mut state = inner.state.lock().unwrap();
            let (tid, parent) = Inner::thread_ctx(&mut state);
            state
                .stacks
                .entry(std::thread::current().id())
                .or_default()
                .push(id);
            SpanMeta {
                inner: Arc::clone(inner),
                id,
                parent,
                ts_us,
                iter,
                tid,
                trace,
            }
        });
        Span {
            start: Instant::now(),
            name,
            meta,
            done: false,
        }
    }

    /// Add `delta` to counter `name` and record a counter event.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            let iter = inner.iter.load(Ordering::Relaxed);
            let trace = current_trace();
            let mut state = inner.state.lock().unwrap();
            let (tid, parent) = Inner::thread_ctx(&mut state);
            *state.counters.entry(name).or_insert(0) += delta;
            state.events.push(Event {
                kind: EventKind::Counter,
                name,
                value: delta,
                iter,
                id: 0,
                parent,
                ts_us,
                tid,
                trace,
            });
        }
    }

    /// Set gauge `name` to `value` and record a gauge event.
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            let iter = inner.iter.load(Ordering::Relaxed);
            let trace = current_trace();
            let mut state = inner.state.lock().unwrap();
            let (tid, parent) = Inner::thread_ctx(&mut state);
            state.gauges.insert(name, value);
            state.events.push(Event {
                kind: EventKind::Gauge,
                name,
                value,
                iter,
                id: 0,
                parent,
                ts_us,
                tid,
                trace,
            });
        }
    }

    /// Current total of counter `name` (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .state
                    .lock()
                    .unwrap()
                    .counters
                    .get(name)
                    .copied()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Latency histogram accumulated for span `name`, if any closed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.state.lock().unwrap().hists.get(name).cloned())
    }

    /// Snapshot of every recorded event, in recording (close) order.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|inner| inner.state.lock().unwrap().events.clone())
            .unwrap_or_default()
    }

    /// The run identifier set via [`Registry::set_run_id`].
    pub fn run_id(&self) -> String {
        self.inner
            .as_ref()
            .map(|inner| inner.run_id.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Microseconds since the registry epoch (0 when disabled).
    pub fn uptime_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.epoch.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// Point-in-time copy of every counter, gauge, and histogram. The
    /// state lock is held only for the clone — sinks and renderers work
    /// from the returned [`Snapshot`] without stalling recording threads.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let at_us = inner.epoch.elapsed().as_micros() as u64;
        let state = inner.state.lock().unwrap();
        Snapshot {
            at_us,
            interval_us: 0,
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            hists: state.hists.clone(),
        }
    }

    /// Write one JSON object per event (spans, counters, gauges) followed by
    /// one per-span-name histogram summary line. Every line carries the
    /// `span`, `dur_us`, and `iter` fields; events recorded inside a
    /// [`trace_scope`] also carry `trace_id`. Events and histograms are
    /// copied out under the lock and serialized outside it, so a slow sink
    /// never stalls recording threads.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let run = inner.run_id.lock().unwrap().clone();
        let run = json_escape(&run);
        let last_iter = inner.iter.load(Ordering::Relaxed);
        let (events, hists) = {
            let state = inner.state.lock().unwrap();
            (state.events.clone(), state.hists.clone())
        };
        for e in &events {
            let (ty, dur, mut extra) = match e.kind {
                EventKind::Span => ("span", e.value, String::new()),
                EventKind::Counter => ("counter", 0, format!(",\"value\":{}", e.value)),
                EventKind::Gauge => ("gauge", 0, format!(",\"value\":{}", e.value)),
            };
            if let Some(t) = &e.trace {
                extra.push_str(&format!(",\"trace_id\":\"{}\"", json_escape(t)));
            }
            writeln!(
                w,
                "{{\"type\":\"{ty}\",\"run\":\"{run}\",\"span\":\"{}\",\"id\":{},\"parent\":{},\"iter\":{},\"ts_us\":{},\"dur_us\":{dur},\"tid\":{}{extra}}}",
                e.name, e.id, e.parent, e.iter, e.ts_us, e.tid
            )?;
        }
        for (name, h) in &hists {
            writeln!(
                w,
                "{{\"type\":\"hist\",\"run\":\"{run}\",\"span\":\"{name}\",\"iter\":{last_iter},\"dur_us\":0,\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                h.count(),
                h.sum(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99)
            )?;
        }
        Ok(())
    }

    /// Write the Chrome `trace_event` JSON format (an object with a
    /// `traceEvents` array) loadable in `chrome://tracing` or Perfetto.
    /// Spans become complete (`"ph":"X"`) events; counters and gauges become
    /// counter (`"ph":"C"`) events. Spans opened inside a [`trace_scope`]
    /// carry the trace id in `args.trace_id`, so one labeling interaction
    /// can be followed across client thread, connection handler, and
    /// session worker. Events are copied out under the lock and serialized
    /// outside it.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            writeln!(w, "{{\"traceEvents\":[]}}")?;
            return Ok(());
        };
        let events = inner.state.lock().unwrap().events.clone();
        write!(w, "{{\"traceEvents\":[")?;
        let mut running: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            let trace_arg = e
                .trace
                .as_ref()
                .map(|t| format!(",\"trace_id\":\"{}\"", json_escape(t)))
                .unwrap_or_default();
            match e.kind {
                EventKind::Span => write!(
                    w,
                    "{{\"name\":\"{}\",\"cat\":\"alem\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"iter\":{}{trace_arg}}}}}",
                    e.name, e.ts_us, e.value, e.tid, e.iter
                )?,
                EventKind::Counter | EventKind::Gauge => {
                    let level = if e.kind == EventKind::Counter {
                        let c = running.entry(e.name).or_insert(0);
                        *c += e.value;
                        *c
                    } else {
                        e.value
                    };
                    write!(
                        w,
                        "{{\"name\":\"{}\",\"cat\":\"alem\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{level}{trace_arg}}}}}",
                        e.name, e.ts_us, e.tid
                    )?
                }
            }
        }
        writeln!(w, "]}}")?;
        Ok(())
    }

    /// Per-span-name totals: `(name, count, total, p50, p90, p99)` in µs,
    /// sorted by descending total time.
    pub fn phase_totals(&self) -> Vec<(&'static str, u64, u64, u64, u64, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let state = inner.state.lock().unwrap();
        let mut rows: Vec<_> = state
            .hists
            .iter()
            .map(|(name, h)| {
                (
                    *name,
                    h.count(),
                    h.sum(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99),
                )
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows
    }

    /// Render the end-of-run summary table (per-phase totals + histogram
    /// quantiles, then counters and gauges). Empty string when disabled.
    pub fn summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>7} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "count", "total_ms", "p50_us", "p90_us", "p99_us"
        ));
        for (name, count, total_us, p50, p90, p99) in self.phase_totals() {
            out.push_str(&format!(
                "{name:<24} {count:>7} {:>12.2} {p50:>10} {p90:>10} {p99:>10}\n",
                total_us as f64 / 1e3
            ));
        }
        let state = inner.state.lock().unwrap();
        if !state.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &state.counters {
                out.push_str(&format!("  {name:<26} {v:>10}\n"));
            }
        }
        if !state.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &state.gauges {
                out.push_str(&format!("  {name:<26} {v:>10}\n"));
            }
        }
        out
    }
}

struct SpanMeta {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    ts_us: u64,
    iter: u64,
    tid: u64,
    trace: Option<Arc<str>>,
}

impl SpanMeta {
    fn close(&self, name: &'static str, dur: Duration) {
        let dur_us = dur.as_micros() as u64;
        let mut state = self.inner.state.lock().unwrap();
        if let Some(stack) = state.stacks.get_mut(&std::thread::current().id()) {
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        }
        state.hists.entry(name).or_default().record(dur_us);
        state.events.push(Event {
            kind: EventKind::Span,
            name,
            value: dur_us,
            iter: self.iter,
            id: self.id,
            parent: self.parent,
            ts_us: self.ts_us,
            tid: self.tid,
            trace: self.trace.clone(),
        });
    }
}

/// An open timing span. Obtain via [`Registry::span`]; close with
/// [`Span::finish`] to get the elapsed [`Duration`] (and, on an enabled
/// registry, record the close event and feed the per-name histogram).
/// Dropping an unfinished span closes it too.
pub struct Span {
    start: Instant,
    name: &'static str,
    meta: Option<SpanMeta>,
    done: bool,
}

impl Span {
    /// Close the span, returning its wall-clock duration. Works (and
    /// returns an accurate duration) on disabled registries too.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        if let Some(meta) = &self.meta {
            meta.close(self.name, dur);
        }
        self.done = true;
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            if let Some(meta) = &self.meta {
                meta.close(self.name, self.start.elapsed());
            }
        }
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing_but_spans_still_time() {
        let reg = Registry::disabled();
        let span = reg.span("work");
        std::thread::sleep(Duration::from_millis(2));
        let dur = span.finish();
        assert!(dur >= Duration::from_millis(2));
        assert!(reg.events().is_empty());
        reg.counter_add("c", 5);
        reg.gauge_set("g", 7);
        assert_eq!(reg.counter_value("c"), 0);
        assert!(reg.histogram("work").is_none());
        let mut buf = Vec::new();
        reg.write_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(reg.summary().is_empty());
    }

    #[test]
    fn span_nesting_tracks_parent_ids() {
        let reg = Registry::enabled();
        let outer = reg.span("outer");
        let inner = reg.span("inner");
        inner.finish();
        outer.finish();
        let events = reg.events();
        assert_eq!(events.len(), 2);
        // Close order: inner first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent, events[1].id);
        assert_eq!(events[1].parent, 0);
    }

    #[test]
    fn dropped_span_still_closes() {
        let reg = Registry::enabled();
        {
            let _span = reg.span("scoped");
        }
        assert_eq!(reg.events().len(), 1);
        assert_eq!(reg.histogram("scoped").unwrap().count(), 1);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = Registry::enabled();
        reg.counter_add("pairs", 3);
        reg.counter_add("pairs", 4);
        reg.gauge_set("pool", 100);
        reg.gauge_set("pool", 90);
        assert_eq!(reg.counter_value("pairs"), 7);
        let events = reg.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].value, 90);
    }

    #[test]
    fn jsonl_lines_have_required_fields() {
        let reg = Registry::enabled();
        reg.set_run_id("test-run");
        reg.set_iter(2);
        reg.span("phase").finish();
        reg.counter_add("ticks", 1);
        let mut buf = Vec::new();
        reg.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // span + counter + hist summary
        for line in &lines {
            for key in ["\"span\":", "\"dur_us\":", "\"iter\":"] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
            assert!(line.contains("\"run\":\"test-run\""));
        }
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let reg = Registry::enabled();
        reg.span("a").finish();
        reg.counter_add("c", 2);
        let mut buf = Vec::new();
        reg.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn summary_lists_phases_and_metrics() {
        let reg = Registry::enabled();
        reg.span("train").finish();
        reg.counter_add("labels", 10);
        reg.gauge_set("pool", 5);
        let s = reg.summary();
        assert!(s.contains("train"));
        assert!(s.contains("labels"));
        assert!(s.contains("pool"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn trace_scope_stamps_events_and_restores_on_drop() {
        let reg = Registry::enabled();
        reg.span("before").finish();
        {
            let _g = trace_scope(Some("req-42"));
            reg.span("inside").finish();
            reg.counter_add("hits", 1);
            {
                // A scope without an id masks the outer trace.
                let _inner = trace_scope(None);
                reg.span("masked").finish();
            }
            reg.span("inside_again").finish();
        }
        reg.span("after").finish();
        let by_name: HashMap<&str, Option<String>> = reg
            .events()
            .iter()
            .map(|e| (e.name, e.trace.as_ref().map(|t| t.to_string())))
            .collect();
        assert_eq!(by_name["before"], None);
        assert_eq!(by_name["inside"], Some("req-42".to_string()));
        assert_eq!(by_name["hits"], Some("req-42".to_string()));
        assert_eq!(by_name["masked"], None);
        assert_eq!(by_name["inside_again"], Some("req-42".to_string()));
        assert_eq!(by_name["after"], None);
    }

    #[test]
    fn trace_id_reaches_jsonl_and_chrome_sinks() {
        let reg = Registry::enabled();
        {
            let _g = trace_scope(Some("t-7"));
            reg.span("traced").finish();
        }
        reg.span("plain").finish();
        let mut buf = Vec::new();
        reg.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let traced = text.lines().find(|l| l.contains("\"traced\"")).unwrap();
        assert!(traced.contains("\"trace_id\":\"t-7\""), "{traced}");
        let plain = text.lines().find(|l| l.contains("\"plain\"")).unwrap();
        assert!(!plain.contains("trace_id"), "{plain}");
        let mut buf = Vec::new();
        reg.write_chrome_trace(&mut buf).unwrap();
        let chrome = String::from_utf8(buf).unwrap();
        assert!(chrome.contains("\"trace_id\":\"t-7\""));
    }

    #[test]
    fn snapshot_is_a_cheap_aggregate_copy() {
        let reg = Registry::enabled();
        reg.counter_add("c", 2);
        reg.gauge_set("g", 3);
        reg.span("s").finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&2));
        assert_eq!(snap.gauges.get("g"), Some(&3));
        assert_eq!(snap.hists.get("s").unwrap().count(), 1);
        assert!(reg.uptime_us() >= snap.at_us);
        // Disabled registries snapshot to the empty default.
        assert_eq!(Registry::disabled().snapshot(), Snapshot::default());
    }
}
