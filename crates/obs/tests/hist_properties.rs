//! Property-based tests on the log-bucketed histogram.

use alem_obs::{bucket_bounds, bucket_index, Histogram, BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands inside the bounds of the bucket it indexes to.
    #[test]
    fn value_within_own_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v);
        prop_assert!(v < hi || hi == u64::MAX);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c), including
    /// count/sum/min/max bookkeeping.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(0u64..1_000_000, 0..40),
        ys in prop::collection::vec(0u64..1_000_000, 0..40),
        zs in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let fill = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (fill(&xs), fill(&ys), fill(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// Merge is commutative and count-preserving.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..40),
        ys in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let fill = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b) = (fill(&xs), fill(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    }

    /// Quantiles are monotone in q: a higher quantile can never report a
    /// smaller value, no matter how the samples bucket.
    #[test]
    fn quantile_is_monotone_in_q(
        vals in prop::collection::vec(any::<u64>(), 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let (qa, qb) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        prop_assert!(
            h.quantile(qa) <= h.quantile(qb),
            "q{}={} > q{}={}", qa, h.quantile(qa), qb, h.quantile(qb)
        );
    }

    /// Snapshot-then-delta round-trip: recording a prefix, snapshotting,
    /// then recording a suffix makes `delta_since(prefix)` equal the
    /// histogram of the suffix alone — bucket counts, count, and sum all
    /// match, which is what makes windowed quantiles trustworthy.
    #[test]
    fn snapshot_then_delta_round_trips(
        prefix in prop::collection::vec(0u64..10_000_000, 0..100),
        suffix in prop::collection::vec(0u64..10_000_000, 0..100),
    ) {
        let mut h = Histogram::new();
        for &v in &prefix {
            h.record(v);
        }
        let snap = h.clone();
        for &v in &suffix {
            h.record(v);
        }
        let delta = h.delta_since(&snap);

        let mut expect = Histogram::new();
        for &v in &suffix {
            expect.record(v);
        }
        prop_assert_eq!(delta.count(), expect.count());
        prop_assert_eq!(delta.sum(), expect.sum());
        for idx in 0..BUCKETS {
            prop_assert_eq!(
                delta.bucket_count(idx),
                expect.bucket_count(idx),
                "bucket {} diverged", idx
            );
        }
        // (min/max are bucket-resolution approximations in the delta, so
        // only the bucket counts, count, and sum are exact invariants.)
    }

    /// Quantile estimates stay within the documented 12.5% relative error
    /// bound of the true empirical quantile (for values >= 4; below that
    /// buckets are exact).
    #[test]
    fn quantile_error_bounded(
        vals in prop::collection::vec(4u64..10_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut vals = vals;
        vals.sort_unstable();
        let rank = ((q * vals.len() as f64).ceil() as usize).max(1);
        let exact = vals[rank - 1] as f64;
        let est = h.quantile(q) as f64;
        prop_assert!(
            (est - exact).abs() / exact <= 0.125,
            "q={} est={} exact={}", q, est, exact
        );
    }
}
