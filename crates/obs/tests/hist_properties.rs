//! Property-based tests on the log-bucketed histogram.

use alem_obs::{bucket_bounds, bucket_index, Histogram, BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands inside the bounds of the bucket it indexes to.
    #[test]
    fn value_within_own_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v);
        prop_assert!(v < hi || hi == u64::MAX);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c), including
    /// count/sum/min/max bookkeeping.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(0u64..1_000_000, 0..40),
        ys in prop::collection::vec(0u64..1_000_000, 0..40),
        zs in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let fill = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (fill(&xs), fill(&ys), fill(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// Merge is commutative and count-preserving.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..40),
        ys in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let fill = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b) = (fill(&xs), fill(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    }

    /// Quantile estimates stay within the documented 12.5% relative error
    /// bound of the true empirical quantile (for values >= 4; below that
    /// buckets are exact).
    #[test]
    fn quantile_error_bounded(
        vals in prop::collection::vec(4u64..10_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut vals = vals;
        vals.sort_unstable();
        let rank = ((q * vals.len() as f64).ceil() as usize).max(1);
        let exact = vals[rank - 1] as f64;
        let est = h.quantile(q) as f64;
        prop_assert!(
            (est - exact).abs() / exact <= 0.125,
            "q={} est={} exact={}", q, est, exact
        );
    }
}
