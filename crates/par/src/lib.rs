//! Deterministic fixed-chunk thread parallelism.
//!
//! Everything the active-learning pipeline parallelizes — committee members,
//! forest trees, pool scores, feature rows — is an *independent* per-item
//! computation, so the only way parallelism could perturb results is through
//! work partitioning or merge order. This crate removes both degrees of
//! freedom:
//!
//! * **Chunk boundaries depend only on `(len, n_threads)`** — never on
//!   timing, work stealing, or scheduler interleaving (see [`chunks`]).
//! * **Results are merged in chunk order**, so [`Parallelism::map`] returns
//!   exactly what the sequential `items.iter().map(f).collect()` would.
//!
//! Combined with per-item RNG seeds pre-derived on the caller's single
//! thread, output is byte-identical for any thread count: `--threads 1`
//! and `--threads 8` produce the same `RunResult::deterministic_fingerprint`.
//!
//! The crate is intentionally zero-dependency and is the only place in the
//! workspace allowed to touch `std::thread` (alem-lint rule
//! `par-only-threads`), so the audit surface for "can threading change a
//! result?" is this one file.

#![forbid(unsafe_code)]

pub mod supervised;

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Mutex;

/// Thread-count policy for deterministic parallel execution.
///
/// `Parallelism` is a resolved, copyable thread count: `fixed(1)` (alias
/// [`Parallelism::sequential`]) runs every map inline on the caller's
/// thread — today's exact code path — while larger counts fan out over
/// scoped threads with deterministic chunking. The default is
/// [`Parallelism::auto`] (available cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl Parallelism {
    /// One worker per available core (as reported by the OS at call time).
    /// Falls back to 1 if the count cannot be determined.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism { threads }
    }

    /// Exactly `n` workers; `0` is clamped to `1`.
    pub fn fixed(n: usize) -> Self {
        Parallelism { threads: n.max(1) }
    }

    /// Single-threaded: every map runs inline with no thread spawned.
    pub fn sequential() -> Self {
        Parallelism::fixed(1)
    }

    /// The configured worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when maps run inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Number of chunks a slice of `len` items is split into — the value
    /// reported by the `par.chunks` metric.
    pub fn chunk_count(&self, len: usize) -> usize {
        chunks(len, self.threads).len()
    }

    /// Deterministic parallel map: applies `f` to every item and returns
    /// the results in item order, regardless of thread count.
    ///
    /// Chunk boundaries come from [`chunks`]`(items.len(), self.threads())`
    /// and chunk results are concatenated in chunk order, so the output is
    /// identical to `items.iter().map(f).collect()`. With one thread (or
    /// fewer than two items) no thread is spawned at all.
    ///
    /// A panic in `f` is propagated to the caller after all workers join.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let ranges = chunks(items.len(), self.threads);
        if ranges.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk_results: Vec<Vec<U>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let f = &f;
                    let slice = &items[r.start..r.end];
                    s.spawn(move || slice.iter().map(f).collect::<Vec<U>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for c in chunk_results {
            out.extend(c);
        }
        out
    }

    /// Run a batch of independent jobs on a dynamic work queue, returning
    /// results in job order.
    ///
    /// Unlike [`Parallelism::map`], jobs are claimed greedily by whichever
    /// worker is free, so wall-clock time tracks the *sum* of job costs
    /// divided by workers even when costs are wildly uneven (benchmark
    /// cells, dataset sweeps). Use this only when each job is internally
    /// deterministic: execution *order* is timing-dependent, but each
    /// result lands at its job's index, so the returned vector is not.
    ///
    /// A panic in a job is propagated to the caller after all workers join.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let queue: Mutex<Vec<(usize, F)>> =
            Mutex::new(jobs.into_iter().enumerate().rev().collect());
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let results = &results;
                    s.spawn(move || loop {
                        let job = match queue.lock() {
                            Ok(mut q) => q.pop(),
                            Err(_) => None, // another worker panicked; stop
                        };
                        let Some((idx, job)) = job else { break };
                        let out = job();
                        if let Ok(mut res) = results.lock() {
                            res[idx] = Some(out);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
        });
        let slots = results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Every job ran (workers only stop on an empty queue) and panics were
        // re-raised above, so each slot is filled.
        slots.into_iter().flatten().collect()
    }
}

/// Fixed chunk boundaries for splitting `len` items across `n_threads`
/// workers: a pure function of `(len, n_threads)`.
///
/// At most `min(n_threads, len)` chunks are produced; sizes differ by at
/// most one, with the remainder spread over the *leading* chunks. An empty
/// input yields no chunks.
pub fn chunks(len: usize, n_threads: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let n = n_threads.clamp(1, len);
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_empty_input_yields_no_chunks() {
        assert!(chunks(0, 4).is_empty());
        assert_eq!(Parallelism::fixed(4).chunk_count(0), 0);
    }

    #[test]
    fn chunks_pool_smaller_than_threads_caps_at_len() {
        let c = chunks(3, 8);
        assert_eq!(c, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn chunks_len_not_divisible_spreads_remainder_over_leading_chunks() {
        let c = chunks(10, 4);
        assert_eq!(c, vec![0..3, 3..6, 6..8, 8..10]);
        // Contiguous cover of 0..len with sizes differing by at most one.
        for (a, b) in c.iter().zip(c.iter().skip(1)) {
            assert_eq!(a.end, b.start);
            assert!(a.len() >= b.len() && a.len() - b.len() <= 1);
        }
    }

    #[test]
    fn chunks_depend_only_on_len_and_threads() {
        assert_eq!(chunks(100, 7), chunks(100, 7));
        assert_eq!(chunks(1, 1), vec![0..1]);
        assert_eq!(chunks(5, 1), vec![0..5]);
    }

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1, 2, 3, 8, 64] {
            let got = Parallelism::fixed(t).map(&items, |x| x * x + 1);
            assert_eq!(got, expected, "threads={t}");
        }
    }

    #[test]
    fn map_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(Parallelism::fixed(8).map(&empty, |x| x + 1).is_empty());
        assert_eq!(Parallelism::fixed(8).map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn run_preserves_job_order() {
        let jobs: Vec<_> = (0..20u64).map(|i| move || i * 10).collect();
        let got = Parallelism::fixed(4).run(jobs);
        assert_eq!(got, (0..20u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn fixed_zero_clamps_to_one() {
        let p = Parallelism::fixed(0);
        assert_eq!(p.threads(), 1);
        assert!(p.is_sequential());
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::auto().threads() >= 1);
    }
}
