//! Supervised, named threads for long-running service code.
//!
//! [`Parallelism::map`][crate::Parallelism::map] and friends cover the
//! *compute* fan-outs (scoped, joined before return, panics re-raised).
//! A server is different: its accept loops and per-connection workers are
//! long-lived, detached from any scope, and a panic in one must be
//! *contained and observed* rather than propagated — one poisoned session
//! must never take down the fleet. [`spawn`] is the workspace's single
//! entry point for that shape of thread (the `par-only-threads` lint
//! forbids `std::thread::spawn`/`Builder` everywhere else, including the
//! server crate): every thread gets a name (so panics and debuggers can
//! attribute it) and a join handle whose [`Supervised::join`] converts a
//! panic into a structured [`Panicked`] value instead of unwinding into
//! the supervisor.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// A thread died by panicking; the payload's message, if it was a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Panicked {
    /// The thread's name as given to [`spawn`].
    pub thread: String,
    /// Panic payload rendered to text (`"<non-string panic payload>"`
    /// when the payload was not a `String`/`&str`).
    pub message: String,
}

fn render_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

type PanicObserver = Box<dyn Fn(&Panicked) + Send + Sync>;

fn observers() -> &'static Mutex<Vec<PanicObserver>> {
    static OBSERVERS: OnceLock<Mutex<Vec<PanicObserver>>> = OnceLock::new();
    OBSERVERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a process-wide observer called *inside* a supervised thread
/// the moment its closure panics — before the thread finishes unwinding
/// and before (or whether or not) anyone joins it. This is the hook a
/// service uses to flush post-mortem telemetry for detached daemon
/// threads, whose panics would otherwise only surface if something
/// joined them. Observers must not panic; a panicking observer aborts
/// via double-panic. Observers cannot be removed — registration is for
/// process-lifetime concerns like black-box dumps.
pub fn add_panic_observer(f: impl Fn(&Panicked) + Send + Sync + 'static) {
    let mut obs = observers().lock().unwrap_or_else(|p| p.into_inner());
    obs.push(Box::new(f));
}

fn notify_panic(info: &Panicked) {
    let obs = observers().lock().unwrap_or_else(|p| p.into_inner());
    for f in obs.iter() {
        f(info);
    }
}

impl std::fmt::Display for Panicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread '{}' panicked: {}", self.thread, self.message)
    }
}

impl std::error::Error for Panicked {}

/// Handle to a supervised thread. Dropping it detaches the thread (fine
/// for daemon loops that run until process exit); [`Supervised::join`]
/// reaps it and reports a panic as data.
pub struct Supervised<T> {
    name: String,
    handle: thread::JoinHandle<T>,
}

impl<T> Supervised<T> {
    /// The name the thread was spawned with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the thread has finished running (join will not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Wait for the thread and return its result, converting a panic into
    /// [`Panicked`] instead of resuming the unwind in the supervisor.
    pub fn join(self) -> Result<T, Panicked> {
        match self.handle.join() {
            Ok(v) => Ok(v),
            Err(payload) => Err(Panicked {
                thread: self.name,
                message: render_payload(payload.as_ref()),
            }),
        }
    }
}

/// Spawn a named, supervised thread. The only sanctioned way to start a
/// long-lived thread outside this crate; see the module docs.
///
/// A panic in `f` first notifies every [`add_panic_observer`] hook (still
/// on the dying thread), then resumes unwinding so [`Supervised::join`]
/// reports it exactly as before.
///
/// Errors only if the OS refuses to create the thread.
pub fn spawn<T, F>(name: &str, f: F) -> std::io::Result<Supervised<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let thread_name = name.to_owned();
    let handle = thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => v,
            Err(payload) => {
                notify_panic(&Panicked {
                    thread: thread_name,
                    message: render_payload(payload.as_ref()),
                });
                resume_unwind(payload)
            }
        })?;
    Ok(Supervised {
        name: name.to_owned(),
        handle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_the_value() {
        let t = spawn("adder", || 40 + 2).unwrap();
        assert_eq!(t.name(), "adder");
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn panic_is_contained_as_data() {
        let t = spawn("doomed", || -> u32 { panic!("boom {}", 7) }).unwrap();
        let err = t.join().unwrap_err();
        assert_eq!(err.thread, "doomed");
        assert_eq!(err.message, "boom 7");
        assert!(err.to_string().contains("thread 'doomed' panicked"));
    }

    #[test]
    fn non_string_payload_is_reported_generically() {
        let t = spawn("weird", || std::panic::panic_any(17u32)).unwrap();
        let err = t.join().unwrap_err();
        assert_eq!(err.message, "<non-string panic payload>");
    }

    #[test]
    fn is_finished_flips_after_completion() {
        let t = spawn("quick", || ()).unwrap();
        // Join implies finished; poll first to exercise the accessor.
        while !t.is_finished() {
            std::thread::yield_now();
        }
        t.join().unwrap();
    }

    #[test]
    fn panic_observers_fire_before_join() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        static SEEN: AtomicU64 = AtomicU64::new(0);
        let seen_name = Arc::new(Mutex::new(String::new()));
        let capture = Arc::clone(&seen_name);
        add_panic_observer(move |p| {
            if p.thread == "observed" {
                SEEN.fetch_add(1, Ordering::SeqCst);
                *capture.lock().unwrap() = p.message.clone();
            }
        });
        let t = spawn("observed", || -> () { panic!("watched boom") }).unwrap();
        // The observer runs on the dying thread before join completes.
        let err = t.join().unwrap_err();
        assert_eq!(err.message, "watched boom");
        assert_eq!(SEEN.load(Ordering::SeqCst), 1);
        assert_eq!(&*seen_name.lock().unwrap(), "watched boom");
        // Non-panicking threads never notify.
        spawn("calm", || ()).unwrap().join().unwrap();
        assert_eq!(SEEN.load(Ordering::SeqCst), 1);
    }
}
