//! `alem-admin` — command-line operator console for a running
//! `alem-serve` instance.
//!
//! ```text
//! alem-admin --addr 127.0.0.1:7171 healthz
//! alem-admin --addr /tmp/alem.sock metrics --text > metrics.prom
//! alem-admin --addr /tmp/alem.sock status
//! alem-admin --addr /tmp/alem.sock drive --session smoke --dataset toy --seed 7
//! alem-admin --addr /tmp/alem.sock drain
//! ```
//!
//! Every command exits 0 on success and 1 on any failure (connection
//! refused, `ok:false` response, failed session), so the commands
//! compose directly into CI smoke jobs and shell health checks. `drive`
//! opens a session and answers its queries with the ground-truth oracle
//! until it completes — a full labeling round-trip through the real wire
//! protocol, which is the strongest liveness probe the service offers.

use alem_core::oracle::{AnswerKey, OracleAnswer};
use alem_serve::client::Client;
use alem_serve::dataset;
use alem_serve::proto::Request;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: alem-admin --addr ADDR [--trace-id ID] COMMAND
commands:
  healthz                 liveness: session counts, drain flag, uptime
  status                  per-session states
  metrics [--text]        fleet metrics (--text: Prometheus exposition only)
  drain                   request a graceful drain
  drive --session NAME --dataset SPEC --seed N [--strategy S]
                          open a session and drive it to completion";

fn main() {
    std::process::exit(run());
}

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("alem-admin: {msg}");
    1
}

fn run() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut trace_id: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v),
                None => return fail(format!("--addr needs a value\n{USAGE}")),
            },
            "--trace-id" => match it.next() {
                Some(v) => trace_id = Some(v),
                None => return fail(format!("--trace-id needs a value\n{USAGE}")),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            _ => {
                rest.push(a);
                rest.extend(it);
                break;
            }
        }
    }
    let Some(addr) = addr else {
        return fail(format!("--addr is required\n{USAGE}"));
    };
    let Some(command) = rest.first().cloned() else {
        return fail(format!("missing command\n{USAGE}"));
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(format!("connecting to {addr}: {e}")),
    };
    if let Err(e) = client.set_read_timeout(Some(Duration::from_secs(30))) {
        return fail(format!("setting read timeout: {e}"));
    }
    client.set_trace_id(trace_id.as_deref());
    match command.as_str() {
        "healthz" => healthz(&mut client),
        "status" => status(&mut client),
        "metrics" => metrics(&mut client, rest.iter().any(|a| a == "--text")),
        "drain" => drain(&mut client),
        "drive" => drive(&mut client, &rest[1..]),
        other => fail(format!("unknown command '{other}'\n{USAGE}")),
    }
}

fn call(client: &mut Client, req: &Request) -> Result<alem_serve::proto::Response, String> {
    let r = client.call(req).map_err(|e| format!("{req:?}: {e}"))?;
    if !r.ok {
        return Err(format!(
            "{} rejected: {} ({})",
            req.op,
            r.error.as_deref().unwrap_or("?"),
            r.detail.as_deref().unwrap_or("no detail")
        ));
    }
    Ok(r)
}

fn healthz(client: &mut Client) -> i32 {
    match call(client, &Request::new("healthz")) {
        Ok(r) => {
            println!(
                "ok active={} done={} failed={} draining={} uptime_us={}",
                r.active.unwrap_or(0),
                r.done.unwrap_or(0),
                r.failed.unwrap_or(0),
                r.draining.unwrap_or(false),
                r.uptime_us.unwrap_or(0),
            );
            0
        }
        Err(e) => fail(e),
    }
}

fn status(client: &mut Client) -> i32 {
    match call(client, &Request::new("status")) {
        Ok(r) => {
            println!(
                "active={} done={} failed={} draining={}",
                r.active.unwrap_or(0),
                r.done.unwrap_or(0),
                r.failed.unwrap_or(0),
                r.draining.unwrap_or(false),
            );
            for (name, state) in r.sessions.unwrap_or_default() {
                println!("{name}\t{state}");
            }
            0
        }
        Err(e) => fail(e),
    }
}

fn metrics(client: &mut Client, text_only: bool) -> i32 {
    match call(client, &Request::new("metrics")) {
        Ok(r) => {
            if text_only {
                match r.text {
                    Some(text) => {
                        print!("{text}");
                        0
                    }
                    None => fail("metrics response carried no text exposition"),
                }
            } else {
                for (name, value) in r.counters.unwrap_or_default() {
                    println!("counter {name} {value}");
                }
                for (name, value) in r.gauges.unwrap_or_default() {
                    println!("gauge {name} {value}");
                }
                if let Some(n) = r.q2b_count {
                    println!(
                        "summary serve.query_to_batch count={n} p50_us={} p90_us={} p99_us={}",
                        r.q2b_p50_us.unwrap_or(0),
                        r.q2b_p90_us.unwrap_or(0),
                        r.q2b_p99_us.unwrap_or(0),
                    );
                }
                if let Some(n) = r.q2b_win_count {
                    println!(
                        "summary serve.query_to_batch.window count={n} p50_us={} p90_us={} \
                         p99_us={} window_us={}",
                        r.q2b_win_p50_us.unwrap_or(0),
                        r.q2b_win_p90_us.unwrap_or(0),
                        r.q2b_win_p99_us.unwrap_or(0),
                        r.window_us.unwrap_or(0),
                    );
                }
                0
            }
        }
        Err(e) => fail(e),
    }
}

fn drain(client: &mut Client) -> i32 {
    match call(client, &Request::new("drain")) {
        Ok(_) => {
            println!("drain requested");
            0
        }
        Err(e) => fail(e),
    }
}

fn drive(client: &mut Client, args: &[String]) -> i32 {
    let mut session = None;
    let mut spec = None;
    let mut seed = None;
    let mut strategy = "margin".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--session" => session = it.next().cloned(),
            "--dataset" => spec = it.next().cloned(),
            "--seed" => seed = it.next().and_then(|v| v.parse::<u64>().ok()),
            "--strategy" => {
                let Some(v) = it.next() else {
                    return fail("--strategy needs a value");
                };
                strategy = v.clone();
            }
            other => return fail(format!("drive: unknown flag '{other}'\n{USAGE}")),
        }
    }
    let (Some(session), Some(spec), Some(seed)) = (session, spec, seed) else {
        return fail(format!(
            "drive needs --session, --dataset, and --seed\n{USAGE}"
        ));
    };
    let corpus = match dataset::build(&spec) {
        Ok(c) => c,
        Err(e) => return fail(format!("building dataset '{spec}': {e}")),
    };
    let key = AnswerKey::perfect(seed);
    if let Err(e) = call(client, &Request::open(&session, &spec, seed, &strategy)) {
        return fail(e);
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if Instant::now() > deadline {
            return fail(format!("session '{session}' did not finish within 120s"));
        }
        let r = match call(client, &Request::poll(&session)) {
            Ok(r) => r,
            Err(e) => return fail(e),
        };
        match r.state.as_deref() {
            Some("done") => {
                println!(
                    "done session={session} fingerprint={} labels_used={} best_f1={:.4}",
                    r.fingerprint.as_deref().unwrap_or("?"),
                    r.labels_used.unwrap_or(0),
                    r.best_f1.unwrap_or(0.0),
                );
                return 0;
            }
            Some("failed") => {
                return fail(format!(
                    "session '{session}' failed: {}",
                    r.detail.as_deref().unwrap_or("no detail")
                ));
            }
            Some("awaiting_answers") => {
                for example in r.pending.unwrap_or_default() {
                    let req = match key.answer(example, corpus.truth(example)) {
                        OracleAnswer::Label(l) => Request::answer(&session, example, l),
                        OracleAnswer::Abstain => Request::abstain(&session, example),
                    };
                    if let Err(e) = call(client, &req) {
                        return fail(e);
                    }
                }
            }
            other => return fail(format!("unexpected session state {other:?}")),
        }
    }
}
