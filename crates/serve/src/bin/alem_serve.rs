//! `alem-serve` — the crash-tolerant multi-session labeling service.
//!
//! ```text
//! alem-serve --socket /tmp/alem.sock --state-dir ./state \
//!            --max-sessions 256 --deadline-ms 30000 --checkpoint-every 3
//! ```
//!
//! Startup: install signal latches, restore the fleet from the state
//! directory (cold restart), bind, print the resolved listen address on
//! stdout (load harnesses wait for this line), serve until drained.

use alem_obs::Registry;
use alem_serve::fleet::{Fleet, FleetConfig};
use alem_serve::server::{Bind, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    bind: Bind,
    state_dir: PathBuf,
    max_sessions: usize,
    deadline_ms: u64,
    checkpoint_every: usize,
    metrics_out: Option<PathBuf>,
    chaos_die_at_checkpoint: Option<u64>,
}

const USAGE: &str = "usage: alem-serve [--tcp ADDR | --socket PATH] --state-dir DIR \
[--max-sessions N] [--deadline-ms N] [--checkpoint-every N] \
[--metrics-out FILE] [--chaos-die-at-checkpoint N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        state_dir: PathBuf::from("alem-serve-state"),
        max_sessions: 256,
        deadline_ms: 30_000,
        checkpoint_every: 3,
        metrics_out: None,
        chaos_die_at_checkpoint: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--tcp" => args.bind = Bind::Tcp(value("--tcp")?),
            "--socket" => {
                #[cfg(unix)]
                {
                    args.bind = Bind::Unix(PathBuf::from(value("--socket")?));
                }
                #[cfg(not(unix))]
                return Err("--socket requires a unix platform".to_string());
            }
            "--state-dir" => args.state_dir = PathBuf::from(value("--state-dir")?),
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--chaos-die-at-checkpoint" => {
                args.chaos_die_at_checkpoint = Some(
                    value("--chaos-die-at-checkpoint")?
                        .parse()
                        .map_err(|e| format!("--chaos-die-at-checkpoint: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    sigshim::install();
    let obs = Registry::enabled();
    obs.set_run_id("alem-serve");
    let fleet = match Fleet::new(FleetConfig {
        state_dir: args.state_dir.clone(),
        max_sessions: args.max_sessions,
        answer_deadline: Duration::from_millis(args.deadline_ms),
        checkpoint_every: args.checkpoint_every,
        obs: obs.clone(),
        chaos_die_at_checkpoint: args.chaos_die_at_checkpoint,
    }) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("alem-serve: opening state dir: {e}");
            return 1;
        }
    };
    match fleet.restore() {
        Ok((live, done, failed)) => {
            eprintln!("alem-serve: restored {live} live, {done} done, {failed} failed");
        }
        Err(e) => {
            eprintln!("alem-serve: fleet restore failed: {e}");
            return 1;
        }
    }
    let server = match Server::bind(&args.bind, Arc::clone(&fleet)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("alem-serve: bind failed: {e}");
            return 1;
        }
    };
    // The load harness and tests block on this exact line.
    println!("alem-serve: listening on {}", server.addr_desc());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if let Err(e) = server.run() {
        eprintln!("alem-serve: serve loop failed: {e}");
        return 1;
    }
    if let Some(path) = &args.metrics_out {
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = obs.write_jsonl(&mut f) {
                    eprintln!("alem-serve: writing metrics: {e}");
                }
            }
            Err(e) => eprintln!("alem-serve: creating {}: {e}", path.display()),
        }
    }
    0
}
