//! `alem-serve` — the crash-tolerant multi-session labeling service.
//!
//! ```text
//! alem-serve --socket /tmp/alem.sock --state-dir ./state \
//!            --max-sessions 256 --deadline-ms 30000 --checkpoint-every 3
//! ```
//!
//! Startup: install signal latches, restore the fleet from the state
//! directory (cold restart), bind, print the resolved listen address on
//! stdout (load harnesses wait for this line), serve until drained.

use alem_obs::{FlightRecorder, Registry};
use alem_serve::fleet::{Fleet, FleetConfig};
use alem_serve::server::{Bind, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    bind: Bind,
    state_dir: PathBuf,
    max_sessions: usize,
    deadline_ms: u64,
    checkpoint_every: usize,
    metrics_out: Option<PathBuf>,
    flight_window: usize,
    flight_tick_ms: u64,
    chaos_die_at_checkpoint: Option<u64>,
}

const USAGE: &str = "usage: alem-serve [--tcp ADDR | --socket PATH] --state-dir DIR \
[--max-sessions N] [--deadline-ms N] [--checkpoint-every N] \
[--metrics-out FILE] [--flight-window N] [--flight-tick-ms N] \
[--chaos-die-at-checkpoint N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        state_dir: PathBuf::from("alem-serve-state"),
        max_sessions: 256,
        deadline_ms: 30_000,
        checkpoint_every: 3,
        metrics_out: None,
        flight_window: 60,
        flight_tick_ms: 1_000,
        chaos_die_at_checkpoint: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--tcp" => args.bind = Bind::Tcp(value("--tcp")?),
            "--socket" => {
                #[cfg(unix)]
                {
                    args.bind = Bind::Unix(PathBuf::from(value("--socket")?));
                }
                #[cfg(not(unix))]
                return Err("--socket requires a unix platform".to_string());
            }
            "--state-dir" => args.state_dir = PathBuf::from(value("--state-dir")?),
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--flight-window" => {
                args.flight_window = value("--flight-window")?
                    .parse()
                    .map_err(|e| format!("--flight-window: {e}"))?
            }
            "--flight-tick-ms" => {
                args.flight_tick_ms = value("--flight-tick-ms")?
                    .parse()
                    .map_err(|e| format!("--flight-tick-ms: {e}"))?
            }
            "--chaos-die-at-checkpoint" => {
                args.chaos_die_at_checkpoint = Some(
                    value("--chaos-die-at-checkpoint")?
                        .parse()
                        .map_err(|e| format!("--chaos-die-at-checkpoint: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    sigshim::install();
    let obs = Registry::enabled();
    obs.set_run_id("alem-serve");
    // Flight recorder: the service's black box. Dumps land next to the
    // session checkpoints so one directory holds everything needed for a
    // post-mortem. A panic on any supervised thread (connection handler,
    // deadline sweeper, flight ticker) snapshots the last window before
    // the thread dies.
    let flight = FlightRecorder::new(obs.clone(), args.flight_window)
        .with_dump_dir(args.state_dir.join("flight"));
    {
        let flight = flight.clone();
        alem_par::supervised::add_panic_observer(move |p| {
            flight.tick();
            match flight.dump_to_dir("postmortem") {
                Ok(Some(path)) => eprintln!(
                    "alem-serve: thread '{}' panicked; flight dump at {}",
                    p.thread,
                    path.display()
                ),
                Ok(None) => {}
                Err(e) => eprintln!("alem-serve: postmortem flight dump failed: {e}"),
            }
        });
    }
    let fleet = match Fleet::new(FleetConfig {
        state_dir: args.state_dir.clone(),
        max_sessions: args.max_sessions,
        answer_deadline: Duration::from_millis(args.deadline_ms),
        checkpoint_every: args.checkpoint_every,
        obs: obs.clone(),
        flight: Some(flight.clone()),
        chaos_die_at_checkpoint: args.chaos_die_at_checkpoint,
    }) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("alem-serve: opening state dir: {e}");
            return 1;
        }
    };
    match fleet.restore() {
        Ok((live, done, failed)) => {
            eprintln!("alem-serve: restored {live} live, {done} done, {failed} failed");
        }
        Err(e) => {
            eprintln!("alem-serve: fleet restore failed: {e}");
            return 1;
        }
    }
    let server = match Server::bind(&args.bind, Arc::clone(&fleet)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("alem-serve: bind failed: {e}");
            return 1;
        }
    };
    // The load harness and tests block on this exact line.
    println!("alem-serve: listening on {}", server.addr_desc());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let ticker = match flight.start_ticker(Duration::from_millis(args.flight_tick_ms)) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("alem-serve: flight ticker failed to start: {e}");
            None
        }
    };
    let served = server.run();
    if let Some(t) = ticker {
        if let Err(p) = t.stop() {
            eprintln!("alem-serve: flight ticker panicked: {p}");
        }
    }
    if let Err(e) = served {
        eprintln!("alem-serve: serve loop failed: {e}");
        // Abnormal exit from the serve loop: leave a black-box dump so the
        // failure window is not lost with the process.
        flight.tick();
        if let Ok(Some(path)) = flight.dump_to_dir("abend") {
            eprintln!("alem-serve: abend flight dump at {}", path.display());
        }
        return 1;
    }
    if let Some(path) = &args.metrics_out {
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = obs.write_jsonl(&mut f) {
                    eprintln!("alem-serve: writing metrics: {e}");
                }
            }
            Err(e) => eprintln!("alem-serve: creating {}: {e}", path.display()),
        }
    }
    0
}
