//! `serve-load` — load generator and chaos harness for `alem-serve`.
//!
//! Drives many interleaved labeling sessions against a real server
//! process and asserts the service's core promise: every session's final
//! `deterministic_fingerprint` is byte-identical to a fault-free
//! in-process run of the same (dataset, seed, strategy, params) — no
//! matter what the transport and the process lifecycle did in between.
//!
//! With `--chaos`, client threads inject duplicate answers, reversed
//! wave order, answers for never-asked examples, truncated frames, and
//! mid-wave reconnects, and a few sessions get the `crash` op (a panic
//! inside the server's supervised region). With `--kill-restart`, the
//! run spans three server generations: generation 1 aborts mid-checkpoint
//! write (`--die-at-checkpoint`), generation 2 is SIGKILLed mid-run, and
//! generation 3 drains gracefully. Sessions poisoned by `crash` recover
//! after the next restart from their last durable checkpoint.
//!
//! Emits `BENCH_serve.json` (throughput, query-to-batch latency
//! quantiles from the server's histograms, per-restart recovery times,
//! chaos counts, fingerprint verdict) and exits non-zero on any
//! mismatch or incomplete session.

use alem_core::error::AlemError;
use alem_core::oracle::{AnswerKey, OracleAnswer, RetryPolicy};
use alem_par::{supervised, Parallelism};
use alem_serve::client::Client;
use alem_serve::dataset;
use alem_serve::fleet::build_strategy;
use alem_serve::proto::{self, Request, Response};
use serde::Serialize;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Args {
    sessions: usize,
    clients: usize,
    datasets: Vec<String>,
    strategy: String,
    chaos: bool,
    kill_restart: bool,
    die_at_checkpoint: u64,
    deadline_ms: u64,
    out: PathBuf,
    server_metrics_out: Option<PathBuf>,
}

const USAGE: &str = "usage: serve-load [--sessions N] [--clients N] [--datasets a,b] \
[--strategy NAME] [--chaos] [--kill-restart] [--die-at-checkpoint N] [--deadline-ms N] \
[--out FILE] [--server-metrics-out FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 24,
        clients: 8,
        datasets: vec!["toy".to_string(), "skew".to_string()],
        strategy: "margin".to_string(),
        chaos: false,
        kill_restart: false,
        die_at_checkpoint: 25,
        deadline_ms: 10_000,
        out: PathBuf::from("BENCH_serve.json"),
        server_metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--sessions" => args.sessions = num(&value("--sessions")?)?,
            "--clients" => args.clients = num(&value("--clients")?)?,
            "--datasets" => {
                args.datasets = value("--datasets")?.split(',').map(String::from).collect()
            }
            "--strategy" => args.strategy = value("--strategy")?,
            "--chaos" => args.chaos = true,
            "--kill-restart" => args.kill_restart = true,
            "--die-at-checkpoint" => args.die_at_checkpoint = num(&value("--die-at-checkpoint")?)?,
            "--deadline-ms" => args.deadline_ms = num(&value("--deadline-ms")?)?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--server-metrics-out" => {
                args.server_metrics_out = Some(PathBuf::from(value("--server-metrics-out")?))
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if args.sessions == 0 || args.clients == 0 || args.datasets.is_empty() {
        return Err("need at least one session, client, and dataset".to_string());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad number '{s}': {e}"))
}

#[derive(Clone)]
struct Job {
    session: String,
    dataset: String,
    seed: u64,
    /// Chaos decision bits (0 = clean client).
    chaos: u64,
    /// Send the `crash` op once instead of answering (recovers after the
    /// next restart).
    crash: bool,
}

#[derive(Default)]
struct Stats {
    malformed_rejected: AtomicU64,
    duplicates_sent: AtomicU64,
    bogus_sent: AtomicU64,
    reconnects: AtomicU64,
    crashes_sent: AtomicU64,
}

struct Shared {
    addr: String,
    queue: parking_lot::Mutex<Vec<Job>>,
    requeue: parking_lot::Mutex<Vec<Job>>,
    results: parking_lot::Mutex<std::collections::BTreeMap<String, String>>,
    stop: AtomicBool,
    allow_crash_ops: AtomicBool,
    stats: Stats,
}

enum Drove {
    Done,
    Requeue(Job),
}

fn connect_retry(shared: &Shared) -> Option<Client> {
    let retry = RetryPolicy::default();
    for attempt in 0.. {
        if shared.stop.load(Ordering::SeqCst) {
            return None;
        }
        if let Ok(c) = Client::connect(&shared.addr) {
            return Some(c);
        }
        // Server may be mid-restart; keep probing with bounded backoff.
        std::thread::sleep(
            retry
                .delay_for(attempt.min(6))
                .min(Duration::from_millis(250)),
        );
        if attempt > 600 {
            return None;
        }
    }
    None
}

fn call(client: &mut Client, req: &Request) -> Result<Response, AlemError> {
    client.call(req)
}

/// Drive one session to completion (or to a point where it must be
/// retried after a server restart).
fn drive(shared: &Shared, mut job: Job) -> Drove {
    let Some(mut client) = connect_retry(shared) else {
        return Drove::Requeue(job);
    };
    // One trace id per job: every frame this client sends for the session
    // is correlatable across client thread, connection handler, and
    // session worker in the server's trace sinks.
    let trace = format!("load-{}", job.session);
    client.set_trace_id(Some(&trace));
    let Ok(corpus) = dataset::build(&job.dataset) else {
        eprintln!("serve-load: cannot build dataset '{}'", job.dataset);
        return Drove::Requeue(job);
    };
    let key = AnswerKey::perfect(job.seed);
    // Open (or attach to) the session.
    loop {
        let mut open = Request::open(&job.session, &job.dataset, job.seed, "STRAT");
        open.strategy = Some(shared_strategy());
        let resp = match call(&mut client, &open) {
            Ok(r) => r,
            Err(_) => return Drove::Requeue(job),
        };
        if resp.ok {
            break;
        }
        match resp.error.as_deref() {
            Some(proto::ERR_EXISTS) => break, // resumed or already known
            Some(proto::ERR_BUSY) => {
                std::thread::sleep(Duration::from_millis(resp.retry_after_ms.unwrap_or(50)));
            }
            Some(proto::ERR_DRAINING) => return Drove::Requeue(job),
            other => {
                eprintln!(
                    "serve-load: open '{}' rejected ({other:?}): {:?}",
                    job.session, resp.detail
                );
                return Drove::Requeue(job);
            }
        }
    }
    // Poll/answer until done.
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Drove::Requeue(job);
        }
        let resp = match call(&mut client, &Request::poll(&job.session)) {
            Ok(r) => r,
            Err(_) => return Drove::Requeue(job),
        };
        if !resp.ok {
            return Drove::Requeue(job);
        }
        match resp.state.as_deref() {
            Some("done") => {
                if let Some(fp) = resp.fingerprint {
                    shared.results.lock().insert(job.session.clone(), fp);
                }
                return Drove::Done;
            }
            Some("failed") => {
                // Poisoned (crash op or injected fault): parked until the
                // next restart re-hydrates it from checkpoint.
                return Drove::Requeue(job);
            }
            Some("awaiting_answers") => {
                let mut wave = resp.pending.unwrap_or_default();
                if wave.is_empty() {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                if job.crash && shared.allow_crash_ops.load(Ordering::SeqCst) {
                    job.crash = false;
                    let mut crash = Request::new("crash");
                    crash.session = Some(job.session.clone());
                    shared.stats.crashes_sent.fetch_add(1, Ordering::SeqCst);
                    let _ = call(&mut client, &crash);
                    return Drove::Requeue(job);
                }
                if job.chaos & 1 != 0 {
                    wave.reverse(); // out-of-order answers
                }
                for (k, &example) in wave.iter().enumerate() {
                    if job.chaos & 8 != 0 && k == 0 {
                        // Truncated/garbage frame: must get a structured
                        // malformed reply on the same connection.
                        match client.send_raw("{\"op\": \"ans") {
                            Ok(r) if r.error.as_deref() == Some(proto::ERR_MALFORMED) => {
                                shared
                                    .stats
                                    .malformed_rejected
                                    .fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(r) => {
                                eprintln!("serve-load: truncated frame got {:?}", r.error);
                            }
                            Err(_) => return Drove::Requeue(job),
                        }
                    }
                    if job.chaos & 4 != 0 && k == 1 {
                        // Answer for an example the server never asked.
                        shared.stats.bogus_sent.fetch_add(1, Ordering::SeqCst);
                        let bogus = Request::answer(&job.session, usize::MAX / 2, true);
                        if call(&mut client, &bogus).is_err() {
                            return Drove::Requeue(job);
                        }
                    }
                    if job.chaos & 16 != 0 && k == wave.len() / 2 {
                        // Mid-wave reconnect.
                        shared.stats.reconnects.fetch_add(1, Ordering::SeqCst);
                        drop(client);
                        match connect_retry(shared) {
                            Some(c) => {
                                client = c;
                                client.set_trace_id(Some(&trace));
                            }
                            None => return Drove::Requeue(job),
                        }
                    }
                    let req = match key.answer(example, corpus.truth(example)) {
                        OracleAnswer::Label(l) => Request::answer(&job.session, example, l),
                        OracleAnswer::Abstain => Request::abstain(&job.session, example),
                    };
                    if call(&mut client, &req).is_err() {
                        return Drove::Requeue(job);
                    }
                    if job.chaos & 2 != 0 && k == 0 {
                        // Duplicate delivery of the same answer.
                        shared.stats.duplicates_sent.fetch_add(1, Ordering::SeqCst);
                        if call(&mut client, &req).is_err() {
                            return Drove::Requeue(job);
                        }
                    }
                }
            }
            other => {
                eprintln!("serve-load: unexpected poll state {other:?}");
                return Drove::Requeue(job);
            }
        }
    }
}

// The strategy is fixed for the whole run; stashed in a global so `drive`
// doesn't need it threaded through `Job`.
static STRATEGY: parking_lot::Mutex<String> = parking_lot::Mutex::new(String::new());

fn shared_strategy() -> String {
    STRATEGY.lock().clone()
}

struct ServerProc {
    child: Child,
}

impl ServerProc {
    /// Spawn a server generation and block until its listening line.
    fn spawn(
        bin: &std::path::Path,
        addr: &str,
        state_dir: &std::path::Path,
        deadline_ms: u64,
        max_sessions: usize,
        die_at_checkpoint: Option<u64>,
        metrics_out: Option<&std::path::Path>,
    ) -> Result<ServerProc, String> {
        let mut cmd = Command::new(bin);
        if addr.contains('/') {
            cmd.arg("--socket").arg(addr);
        } else {
            cmd.arg("--tcp").arg(addr);
        }
        cmd.arg("--state-dir")
            .arg(state_dir)
            .arg("--max-sessions")
            .arg(max_sessions.to_string())
            .arg("--deadline-ms")
            .arg(deadline_ms.to_string())
            .arg("--checkpoint-every")
            .arg("3")
            // Fast flight ticks so the windowed metrics and post-mortem
            // dumps have fresh intervals even in short harness runs.
            .arg("--flight-tick-ms")
            .arg("200");
        if let Some(n) = die_at_checkpoint {
            cmd.arg("--chaos-die-at-checkpoint").arg(n.to_string());
        }
        if let Some(path) = metrics_out {
            cmd.arg("--metrics-out").arg(path);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().map_err(|e| format!("spawning server: {e}"))?;
        let stdout = child.stdout.take().ok_or("no stdout")?;
        let mut reader = std::io::BufReader::new(stdout);
        use std::io::BufRead;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Err("server exited before listening".to_string()),
                Ok(_) if line.contains("listening on") => break,
                Ok(_) => {}
                Err(e) => return Err(format!("reading server stdout: {e}")),
            }
        }
        // Keep draining stdout so the pipe never fills.
        let drain = supervised::spawn("load.stdout", move || {
            let mut sink = String::new();
            use std::io::Read;
            let _ = reader.read_to_string(&mut sink);
        });
        if let Ok(handle) = drain {
            drop(handle);
        }
        Ok(ServerProc { child })
    }

    fn wait_exit(&mut self, max: Duration) -> Option<std::process::ExitStatus> {
        let t0 = Instant::now();
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Some(status),
                Ok(None) => {
                    if t0.elapsed() > max {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => return None,
            }
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[derive(Serialize)]
struct Report {
    sessions: usize,
    completed: usize,
    clients: usize,
    chaos: bool,
    kill_restart: bool,
    restarts: usize,
    wall_ms: u64,
    sessions_per_sec: f64,
    recovery_ms: Vec<u64>,
    q2b_count: u64,
    q2b_p50_us: u64,
    q2b_p90_us: u64,
    q2b_p99_us: u64,
    fingerprints_checked: usize,
    fingerprints_identical: bool,
    malformed_rejected: u64,
    duplicates_sent: u64,
    bogus_answers_sent: u64,
    reconnects: u64,
    crash_ops_sent: u64,
    sessions_resumed_final_gen: u64,
    answers_timeout_observed: u64,
    flight_postmortem_dumps: usize,
    counters: Vec<(String, u64)>,
}

fn main() {
    std::process::exit(run());
}

#[allow(clippy::too_many_lines)]
fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    *STRATEGY.lock() = args.strategy.clone();

    let server_bin = match server_bin_path() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("serve-load: {e}");
            return 1;
        }
    };
    let scratch = std::env::temp_dir().join(format!("alem-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let state_dir = scratch.join("state");
    let addr = listen_addr(&scratch);

    // Build the job list and the fault-free reference fingerprints.
    let jobs: Vec<Job> = (0..args.sessions)
        .map(|i| {
            let h = mix64(0xC4A0_5EED ^ i as u64);
            Job {
                session: format!("s{i:04}"),
                dataset: args.datasets[i % args.datasets.len()].clone(),
                seed: 1000 + i as u64,
                chaos: if args.chaos { h } else { 0 },
                crash: args.chaos && args.kill_restart && i % 31 == 5,
            }
        })
        .collect();
    eprintln!(
        "serve-load: computing {} reference fingerprints in-process...",
        jobs.len()
    );
    let params = dataset::default_params();
    let references: Vec<String> = Parallelism::auto().map(&jobs, |job| {
        let strategy = build_strategy(&args.strategy).expect("strategy");
        dataset::reference_fingerprint(&job.dataset, job.seed, strategy, &params)
            .expect("reference run")
    });

    let shared = Arc::new(Shared {
        addr: addr.clone(),
        queue: parking_lot::Mutex::new(jobs.iter().rev().cloned().collect()),
        requeue: parking_lot::Mutex::new(Vec::new()),
        results: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        stop: AtomicBool::new(false),
        allow_crash_ops: AtomicBool::new(true),
        stats: Stats::default(),
    });

    let t0 = Instant::now();
    let mut recovery_ms: Vec<u64> = Vec::new();
    let mut restarts = 0usize;
    let spawn_gen = |die_at: Option<u64>, metrics: Option<&std::path::Path>| {
        ServerProc::spawn(
            &server_bin,
            &addr,
            &state_dir,
            args.deadline_ms,
            args.sessions + 8,
            die_at,
            metrics,
        )
    };

    eprintln!("serve-load: starting generation 1 on {addr}");
    let gen1_die = if args.kill_restart {
        Some(args.die_at_checkpoint)
    } else {
        None
    };
    let mut server = match spawn_gen(gen1_die, None) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-load: {e}");
            return 1;
        }
    };

    // Client fleet.
    let mut workers = Vec::new();
    for w in 0..args.clients {
        let shared = Arc::clone(&shared);
        let name = format!("load.client{w}");
        let handle = supervised::spawn(Box::leak(name.into_boxed_str()), move || loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let job = shared.queue.lock().pop();
            let Some(job) = job else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            match drive(&shared, job) {
                Drove::Done => {}
                Drove::Requeue(job) => shared.requeue.lock().push(job),
            }
        });
        match handle {
            Ok(h) => workers.push(h),
            Err(e) => eprintln!("serve-load: spawning client {w}: {e}"),
        }
    }

    let move_requeued = |shared: &Shared| {
        let mut parked = shared.requeue.lock();
        let mut queue = shared.queue.lock();
        let n = parked.len();
        queue.append(&mut parked);
        n
    };

    if args.kill_restart {
        // Generation 1 dies mid-checkpoint-write (abort from the store's
        // chaos hook). If the threshold is never reached, kill it ourselves
        // — the harness still exercises kill-and-restart.
        match server.wait_exit(Duration::from_secs(180)) {
            Some(status) => eprintln!("serve-load: generation 1 died as planned ({status})"),
            None => {
                eprintln!("serve-load: generation 1 outlived die-at threshold; killing");
                server.kill();
            }
        }
        restarts += 1;
        let r0 = Instant::now();
        server = match spawn_gen(None, None) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-load: restarting generation 2: {e}");
                return 1;
            }
        };
        recovery_ms.push(r0.elapsed().as_millis() as u64);
        let moved = move_requeued(&shared);
        eprintln!("serve-load: generation 2 up; requeued {moved} session(s)");

        // Let generation 2 get roughly halfway, then SIGKILL it.
        let target = args.sessions / 2;
        let t = Instant::now();
        while shared.results.lock().len() < target && t.elapsed() < Duration::from_secs(180) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!(
            "serve-load: SIGKILLing generation 2 at {} completed",
            shared.results.lock().len()
        );
        server.kill();
        restarts += 1;
        shared.allow_crash_ops.store(false, Ordering::SeqCst);
        let r0 = Instant::now();
        server = match spawn_gen(None, args.server_metrics_out.as_deref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-load: restarting generation 3: {e}");
                return 1;
            }
        };
        recovery_ms.push(r0.elapsed().as_millis() as u64);
        let moved = move_requeued(&shared);
        eprintln!("serve-load: generation 3 up; requeued {moved} session(s)");
    } else {
        shared.allow_crash_ops.store(false, Ordering::SeqCst);
    }

    // Wait for every session to finish.
    let t = Instant::now();
    let mut last_moved = Instant::now();
    while shared.results.lock().len() < args.sessions && t.elapsed() < Duration::from_secs(300) {
        std::thread::sleep(Duration::from_millis(50));
        if last_moved.elapsed() > Duration::from_secs(2) {
            move_requeued(&shared);
            last_moved = Instant::now();
        }
    }
    let completed = shared.results.lock().len();
    eprintln!(
        "serve-load: {completed}/{} sessions completed in {:?}",
        args.sessions,
        t0.elapsed()
    );

    // Final-generation metrics, then graceful drain.
    let mut q2b = (0u64, 0u64, 0u64, 0u64);
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut resumed_final = 0u64;
    if let Some(mut c) = connect_retry(&shared) {
        if let Ok(m) = c.call(&Request::new("metrics")) {
            q2b = (
                m.q2b_count.unwrap_or(0),
                m.q2b_p50_us.unwrap_or(0),
                m.q2b_p90_us.unwrap_or(0),
                m.q2b_p99_us.unwrap_or(0),
            );
            counters = m.counters.unwrap_or_default();
            resumed_final = counters
                .iter()
                .find(|(n, _)| n == "serve.sessions_resumed")
                .map(|&(_, v)| v)
                .unwrap_or(0);
        }
        let _ = c.call(&Request::new("drain"));
    }
    shared.stop.store(true, Ordering::SeqCst);
    match server.wait_exit(Duration::from_secs(30)) {
        Some(status) if status.success() => eprintln!("serve-load: final generation drained (0)"),
        Some(status) => eprintln!("serve-load: final generation exited {status}"),
        None => {
            eprintln!("serve-load: drain timed out; killing");
            server.kill();
        }
    }
    for w in workers {
        if let Err(p) = w.join() {
            eprintln!("serve-load: client thread panicked: {p}");
        }
    }

    // Separate scenario: a server with a tiny answer deadline must convert
    // silence into abstentions (LatencyOracle/AbstainingOracle semantics).
    let answers_timeout_observed = timeout_scenario(&server_bin, &scratch);

    // Verdict: every session finished with its reference fingerprint.
    let results = shared.results.lock();
    let mut identical = true;
    for (job, reference) in jobs.iter().zip(&references) {
        match results.get(&job.session) {
            Some(fp) if fp == reference => {}
            Some(fp) => {
                identical = false;
                eprintln!(
                    "serve-load: MISMATCH {}: served {fp} != reference {reference}",
                    job.session
                );
            }
            None => {
                identical = false;
                eprintln!("serve-load: session {} never completed", job.session);
            }
        }
    }

    // Black-box verdict: a `crash` op panics inside the server, and the
    // flight recorder must leave a post-mortem dump for it. Counted
    // before the scratch dir is removed.
    let flight_postmortem_dumps = count_postmortems(&state_dir.join("flight"));

    let wall_ms = t0.elapsed().as_millis() as u64;
    let report = Report {
        sessions: args.sessions,
        completed,
        clients: args.clients,
        chaos: args.chaos,
        kill_restart: args.kill_restart,
        restarts,
        wall_ms,
        sessions_per_sec: completed as f64 / (wall_ms.max(1) as f64 / 1000.0),
        recovery_ms,
        q2b_count: q2b.0,
        q2b_p50_us: q2b.1,
        q2b_p90_us: q2b.2,
        q2b_p99_us: q2b.3,
        fingerprints_checked: jobs.len(),
        fingerprints_identical: identical,
        malformed_rejected: shared.stats.malformed_rejected.load(Ordering::SeqCst),
        duplicates_sent: shared.stats.duplicates_sent.load(Ordering::SeqCst),
        bogus_answers_sent: shared.stats.bogus_sent.load(Ordering::SeqCst),
        reconnects: shared.stats.reconnects.load(Ordering::SeqCst),
        crash_ops_sent: shared.stats.crashes_sent.load(Ordering::SeqCst),
        sessions_resumed_final_gen: resumed_final,
        answers_timeout_observed,
        flight_postmortem_dumps,
        counters,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json + "\n") {
                eprintln!("serve-load: writing {}: {e}", args.out.display());
                return 1;
            }
            eprintln!("serve-load: wrote {}", args.out.display());
        }
        Err(e) => {
            eprintln!("serve-load: serializing report: {e}");
            return 1;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if !identical || completed != args.sessions {
        eprintln!("serve-load: FAILED (complete={completed}, identical={identical})");
        return 1;
    }
    let crashes = shared.stats.crashes_sent.load(Ordering::SeqCst);
    if crashes > 0 && flight_postmortem_dumps == 0 {
        eprintln!("serve-load: FAILED ({crashes} crash op(s) sent but no flight post-mortem dump)");
        return 1;
    }
    eprintln!("serve-load: OK");
    0
}

/// Count `postmortem-*.jsonl` flight dumps left behind by induced panics.
fn count_postmortems(flight_dir: &std::path::Path) -> usize {
    let Ok(entries) = std::fs::read_dir(flight_dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("postmortem-") && name.ends_with(".jsonl")
        })
        .count()
}

/// Tiny-deadline scenario: open one session, answer nothing, and assert
/// the server's sweeper converts the silence into abstention answers.
fn timeout_scenario(server_bin: &std::path::Path, scratch: &std::path::Path) -> u64 {
    let state_dir = scratch.join("timeout-state");
    let addr = listen_addr(&scratch.join("timeout"));
    let _ = std::fs::create_dir_all(scratch.join("timeout"));
    let mut server = match ServerProc::spawn(server_bin, &addr, &state_dir, 100, 4, None, None) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-load: timeout scenario spawn: {e}");
            return 0;
        }
    };
    let mut observed = 0;
    if let Ok(mut c) = Client::connect(&addr) {
        let _ = c.call(&Request::open("silent", "toy", 77, &shared_strategy()));
        let t = Instant::now();
        while t.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(100));
            if let Ok(m) = c.call(&Request::new("metrics")) {
                if let Some(&(_, v)) = m
                    .counters
                    .as_deref()
                    .and_then(|cs| cs.iter().find(|(n, _)| n == "serve.answers_timeout"))
                {
                    if v > 0 {
                        observed = v;
                        break;
                    }
                }
            }
        }
        let _ = c.call(&Request::new("drain"));
    }
    let _ = server.wait_exit(Duration::from_secs(15));
    server.kill();
    eprintln!("serve-load: timeout scenario observed {observed} timed-out answer(s)");
    observed
}

fn server_bin_path() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    let dir = me.parent().ok_or("no parent dir")?;
    let candidate = dir.join(if cfg!(windows) {
        "alem-serve.exe"
    } else {
        "alem-serve"
    });
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "alem-serve binary not found next to serve-load ({})",
            candidate.display()
        ))
    }
}

#[cfg(unix)]
fn listen_addr(scratch: &std::path::Path) -> String {
    // Keep the socket path short (sun_path limit): /tmp, not the scratch
    // dir, but namespaced by pid + a scratch-derived tag.
    let tag = mix64(scratch.to_string_lossy().len() as u64 ^ std::process::id() as u64);
    format!("/tmp/alem-{:08x}.sock", tag & 0xffff_ffff)
}

#[cfg(not(unix))]
fn listen_addr(_scratch: &std::path::Path) -> String {
    format!("127.0.0.1:{}", 17000 + std::process::id() % 10_000)
}
