//! Blocking line-oriented client for the serve wire protocol.
//!
//! Used by the `serve-load` harness and the integration tests; small
//! enough to double as a reference implementation for external labelers.
//! One [`Client`] wraps one connection; `call` writes a request line and
//! blocks for the response line. Transport failures surface as
//! [`AlemError::Io`] so callers can apply the workspace's
//! [`alem_core::oracle::RetryPolicy`] backoff and reconnect.

use crate::proto::{self, Request, Response};
use alem_core::error::AlemError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to an `alem-serve` instance.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    trace_id: Option<String>,
}

impl Client {
    fn from_stream(stream: Stream) -> Result<Client, AlemError> {
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        Ok(Client {
            reader,
            writer: stream,
            trace_id: None,
        })
    }

    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Client, AlemError> {
        Client::from_stream(Stream::Tcp(TcpStream::connect(addr).map_err(io_err)?))
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, AlemError> {
        Client::from_stream(Stream::Unix(UnixStream::connect(path).map_err(io_err)?))
    }

    /// Connect to either transport: paths containing '/' are socket
    /// paths, everything else is a TCP address.
    pub fn connect(addr: &str) -> Result<Client, AlemError> {
        #[cfg(unix)]
        if addr.contains('/') {
            return Client::connect_unix(Path::new(addr));
        }
        Client::connect_tcp(addr)
    }

    /// Bound how long `call` may block on the response.
    pub fn set_read_timeout(&mut self, d: Option<Duration>) -> Result<(), AlemError> {
        self.writer.set_read_timeout(d).map_err(io_err)
    }

    /// Attach a trace id stamped onto every subsequent [`Client::call`]
    /// whose request does not already carry one; `None` clears it. The
    /// server propagates the id through its spans and echoes it back, so
    /// one labeling interaction is correlatable across the client thread,
    /// connection handler, and session worker in the trace sinks.
    pub fn set_trace_id(&mut self, id: Option<&str>) {
        self.trace_id = id.map(str::to_string);
    }

    /// Send `req`, block for the response. A connection-level trace id
    /// ([`Client::set_trace_id`]) is applied unless `req` carries its own.
    pub fn call(&mut self, req: &Request) -> Result<Response, AlemError> {
        if req.trace_id.is_none() {
            if let Some(t) = &self.trace_id {
                let mut stamped = req.clone();
                stamped.trace_id = Some(t.clone());
                return self.send_raw(&proto::encode(&stamped));
            }
        }
        self.send_raw(&proto::encode(req))
    }

    /// Send a pre-encoded (possibly deliberately malformed) frame and
    /// block for the response.
    pub fn send_raw(&mut self, line: &str) -> Result<Response, AlemError> {
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(io_err)?;
        if n == 0 {
            return Err(AlemError::Io("server closed the connection".to_string()));
        }
        proto::decode_response(&reply)
            .map_err(|e| AlemError::Io(format!("unparsable response frame: {e}")))
    }
}

fn io_err(e: std::io::Error) -> AlemError {
    AlemError::Io(e.to_string())
}
