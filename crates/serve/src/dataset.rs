//! Server-side corpus registry: a dataset *spec string* deterministically
//! reconstructs the same [`Corpus`] in any process.
//!
//! The service cannot ship corpora over the wire (clients only see example
//! indices), and a restarted server must rebuild each session's corpus
//! bit-identically so the checkpoint's content fingerprint validates. Both
//! needs are met by making the corpus a **pure function of the spec
//! string**: features and truth derive from SplitMix64 hashes of the
//! example index, with no RNG stream and no ambient state.
//!
//! Specs: the named presets in [`SPECS`], or parametric `synth:<n>:<salt>`
//! for arbitrary sizes.

use alem_core::corpus::Corpus;
use alem_core::error::AlemError;
use alem_core::loop_::{EvalMode, LoopParams};
use alem_core::oracle::AnswerKey;
use alem_core::session::{MachineState, SessionConfig, SessionMachine};
use alem_core::strategy::Strategy;

/// Named dataset presets: `(spec, pairs, positive_rate_percent)`.
pub const SPECS: &[(&str, usize, u64)] = &[("toy", 160, 35), ("skew", 240, 15), ("wide", 400, 30)];

/// SplitMix64 finalizer (the same mix `AnswerKey` uses; duplicated here
/// because `alem-core` keeps it private to the oracle module).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` for `(salt, example, dim)`.
fn unit(salt: u64, example: usize, dim: u64) -> f64 {
    let h = mix64(salt ^ mix64(example as u64 ^ (dim << 40)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Build the corpus for `spec`. Deterministic: the same spec yields a
/// byte-identical corpus (same `content_fingerprint`) in every process.
pub fn build(spec: &str) -> Result<Corpus, AlemError> {
    let (n, pos_percent, salt) = parse_spec(spec)?;
    let pos_rate = pos_percent as f64 / 100.0;
    let mut features = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let t = unit(salt, i, 0) < pos_rate;
        // Two informative dims (class-shifted), one noise dim, one
        // correlated composite — separable but not trivially so.
        let shift = if t { 0.5 } else { 0.0 };
        let f0 = unit(salt, i, 1) * 0.5 + shift;
        let f1 = unit(salt, i, 2) * 0.5 + shift * 0.8;
        let f2 = unit(salt, i, 3);
        let f3 = (f0 + f1) / 2.0 + (unit(salt, i, 4) - 0.5) * 0.2;
        features.push(vec![f0, f1, f2, f3]);
        truth.push(t);
    }
    Ok(Corpus::from_features(features, truth).with_name(spec))
}

fn parse_spec(spec: &str) -> Result<(usize, u64, u64), AlemError> {
    for &(name, n, pos) in SPECS {
        if spec == name {
            return Ok((n, pos, mix64(name.len() as u64 ^ 0x5e12_e5e1)));
        }
    }
    if let Some(rest) = spec.strip_prefix("synth:") {
        let mut it = rest.split(':');
        let n: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&n| (8..=100_000).contains(&n))
            .ok_or_else(|| {
                AlemError::InvalidConfig(format!("bad synth size in dataset spec '{spec}'"))
            })?;
        let salt: u64 = match it.next() {
            Some(s) => s.parse().map_err(|_| {
                AlemError::InvalidConfig(format!("bad synth salt in dataset spec '{spec}'"))
            })?,
            None => 0,
        };
        if it.next().is_some() {
            return Err(AlemError::InvalidConfig(format!(
                "dataset spec '{spec}' has trailing fields"
            )));
        }
        return Ok((n, 30, mix64(salt)));
    }
    Err(AlemError::InvalidConfig(format!(
        "unknown dataset spec '{spec}' (named: {}, or synth:<n>[:<salt>])",
        SPECS
            .iter()
            .map(|&(n, _, _)| n)
            .collect::<Vec<_>>()
            .join("/")
    )))
}

/// Default loop parameters for service sessions: small enough that a
/// session is a few hundred wire round-trips, large enough to cross
/// several checkpoint boundaries.
pub fn default_params() -> LoopParams {
    LoopParams {
        seed_size: 12,
        batch_size: 8,
        max_labels: 80,
        eval: EvalMode::Progressive,
        stop_at_f1: None,
    }
}

/// Run `(spec, seed, strategy, params)` to completion **in-process**,
/// answering every query with [`AnswerKey::perfect`] — i.e. the ground
/// truth. Returns the run's deterministic fingerprint.
///
/// This is the fault-free reference the chaos harness and the crash
/// recovery tests compare against: a served session that saw disconnects,
/// duplicated answers, kills, and restarts must reproduce exactly this
/// string.
pub fn reference_fingerprint<S: Strategy>(
    spec: &str,
    seed: u64,
    strategy: S,
    params: &LoopParams,
) -> Result<String, AlemError> {
    let corpus = build(spec)?;
    let key = AnswerKey::perfect(seed);
    let mut machine = SessionMachine::new(strategy, params.clone(), SessionConfig::default());
    machine.start(&corpus, seed)?;
    while machine.state() == MachineState::AwaitingAnswers {
        let wave: Vec<usize> = machine.pending().iter().map(|q| q.example).collect();
        for example in wave {
            let answer = key.answer(example, corpus.truth(example));
            machine.deliver(&corpus, example, answer)?;
        }
    }
    let result = machine.take_result().ok_or_else(|| {
        AlemError::InvalidConfig("reference session halted without a result".into())
    })?;
    Ok(result.deterministic_fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::strategy::MarginSvmStrategy;

    #[test]
    fn specs_build_reproducibly() {
        for &(name, n, _) in SPECS {
            let a = build(name).unwrap();
            let b = build(name).unwrap();
            assert_eq!(a.len(), n);
            assert_eq!(a.content_fingerprint(), b.content_fingerprint(), "{name}");
        }
        // Different specs yield different contents.
        assert_ne!(
            build("toy").unwrap().content_fingerprint(),
            build("synth:160:1").unwrap().content_fingerprint()
        );
    }

    #[test]
    fn synth_spec_parses_and_bad_specs_fail() {
        assert_eq!(build("synth:64").unwrap().len(), 64);
        assert_eq!(build("synth:64:9").unwrap().len(), 64);
        assert!(build("synth:3").is_err()); // below minimum
        assert!(build("synth:64:9:9").is_err());
        assert!(build("nope").is_err());
    }

    #[test]
    fn reference_fingerprint_is_stable_and_seed_sensitive() {
        let params = default_params();
        let fp = |seed| {
            reference_fingerprint(
                "toy",
                seed,
                MarginSvmStrategy::new(Default::default()),
                &params,
            )
            .unwrap()
        };
        assert_eq!(fp(5), fp(5));
        assert_ne!(fp(5), fp(6));
    }
}
