//! The session fleet: registry, supervision, deadlines, admission
//! control, drain, and cold restart.
//!
//! # Supervision model
//!
//! Sessions are passive [`SessionMachine`]s driven by whichever connection
//! thread delivers the next request, serialized by a per-session
//! (non-poisoning) `parking_lot` mutex. Every call into a machine — and
//! therefore into strategy code — runs under `catch_unwind`: a panic is
//! converted into data ([`SessState::Poisoned`]) for *that session only*,
//! counted in `serve.worker_panics`, and the fleet keeps serving. A
//! poisoned session's last durable checkpoint survives, so a fleet
//! restart re-hydrates it as live again — panic isolation now, crash
//! recovery later.
//!
//! # Deadlines
//!
//! Each pending query is stamped when its wave is emitted. The deadline
//! sweeper (a dedicated `alem_par::supervised` thread, see
//! [`crate::server`]) converts overdue queries into abstentions — the
//! same semantics as [`alem_core::oracle::AbstainingOracle`]: the example
//! stays unlabeled and re-selectable, the session keeps moving, and a
//! permanently silent labeler eventually ends the session through the
//! machine's stalled-iterations guard instead of hanging the fleet.
//!
//! # Backpressure
//!
//! Admission is bounded: past `max_sessions` live sessions, `open`
//! answers `busy` with a `retry_after_ms` hint sized from the
//! [`RetryPolicy`] the rest of the workspace already uses. Nothing queues
//! server-side; the client owns the retry schedule.

use crate::dataset;
use crate::proto::{self, Request, Response};
use crate::store::{DoneRecord, SessionMeta, Store};
use alem_core::corpus::Corpus;
use alem_core::error::AlemError;
use alem_core::learner::SvmTrainer;
use alem_core::loop_::LoopParams;
use alem_core::oracle::{OracleAnswer, RetryPolicy};
use alem_core::session::{MachineState, SessionConfig, SessionMachine};
use alem_core::strategy::{
    MarginSvmStrategy, QbcStrategy, RandomStrategy, Strategy, TreeQbcStrategy,
};
use alem_obs::{FlightRecorder, Registry, Span};
use alem_par::Parallelism;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counter families exported by the `metrics` op — both the structured
/// `counters` field and the Prometheus text exposition emit every family
/// listed here (as 0 when untouched), so scrape-side presence checks and
/// `validate_metrics.py --require` never depend on traffic having
/// happened. CI validates exactly this list.
pub const FLEET_COUNTERS: &[&str] = &[
    "serve.sessions_opened",
    "serve.sessions_completed",
    "serve.sessions_failed",
    "serve.sessions_resumed",
    "serve.frames_rejected",
    "serve.answers_applied",
    "serve.answers_ignored",
    "serve.answers_timeout",
    "serve.backpressure_rejects",
    "serve.worker_panics",
];

/// Wall-clock read, isolated so the determinism lint exemption is a
/// single audited site.
fn now() -> Instant {
    // alem-lint: allow(determinism-time) -- deadlines are wall-clock by nature; stamps never feed a RunResult
    Instant::now()
}

/// Build a strategy by wire name. The subset offered over the wire is
/// deliberately small and cheap-per-iteration — service sessions are many
/// and interactive, not one big batch sweep.
pub fn build_strategy(name: &str) -> Result<Box<dyn Strategy + Send>, AlemError> {
    Ok(match name {
        "margin" => Box::new(MarginSvmStrategy::new(SvmTrainer::default())),
        "trees10" => Box::new(TreeQbcStrategy::new(10)),
        "trees20" => Box::new(TreeQbcStrategy::new(20)),
        "qbc5" => Box::new(QbcStrategy::new(SvmTrainer::default(), 5)),
        "random" => Box::new(RandomStrategy::new(SvmTrainer::default(), "Random(SVM)")),
        other => {
            return Err(AlemError::InvalidConfig(format!(
                "unknown strategy '{other}' (margin/trees10/trees20/qbc5/random)"
            )))
        }
    })
}

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Where metas/checkpoints/done records live.
    pub state_dir: PathBuf,
    /// Live-session admission bound; more opens get `busy`.
    pub max_sessions: usize,
    /// Answers older than this are swept into abstentions.
    pub answer_deadline: Duration,
    /// Checkpoint every N iteration boundaries (0 = only at drain).
    pub checkpoint_every: usize,
    /// Telemetry registry shared with the server loop.
    pub obs: Registry,
    /// Flight recorder over `obs`: feeds windowed admission hints and
    /// the post-mortem dumps written on worker panics and drain.
    pub flight: Option<FlightRecorder>,
    /// Abort mid-checkpoint-write on the N-th write (fault injection).
    pub chaos_die_at_checkpoint: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            state_dir: PathBuf::from("alem-serve-state"),
            max_sessions: 256,
            answer_deadline: Duration::from_secs(30),
            checkpoint_every: 3,
            obs: Registry::disabled(),
            flight: None,
            chaos_die_at_checkpoint: None,
        }
    }
}

type Machine = SessionMachine<Box<dyn Strategy + Send>>;

enum SessState {
    Live(Box<Machine>),
    Done(DoneRecord),
    Poisoned(String),
}

struct Session {
    name: String,
    corpus: Arc<Corpus>,
    state: SessState,
    /// (example, asked-at) for the current wave, for deadline sweeping.
    asked_at: Vec<(usize, Instant)>,
    /// Open span from wave emission to wave completion.
    wave_span: Option<Span>,
    /// Max request id of the current wave (changes exactly when a new
    /// wave is emitted — ids are monotonic and waves only shrink).
    wave_max_id: Option<u64>,
    /// Last iteration boundary checkpointed.
    last_ckpt: Option<usize>,
    /// Whether this incarnation was re-hydrated from disk.
    resumed: bool,
}

/// The multi-session service core. All methods are callable from any
/// thread; per-session work is serialized by the session's own mutex.
pub struct Fleet {
    cfg: FleetConfig,
    store: Store,
    retry: RetryPolicy,
    corpora: Mutex<BTreeMap<String, Arc<Corpus>>>,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    draining: AtomicBool,
    // State counts are tracked at transitions instead of by walking the
    // registry: transition sites hold the session's own lock, and taking
    // every session lock from there would self-deadlock.
    n_live: AtomicI64,
    n_done: AtomicI64,
    n_failed: AtomicI64,
}

impl Fleet {
    /// Create the fleet over `cfg.state_dir` (created if missing).
    pub fn new(cfg: FleetConfig) -> Result<Self, AlemError> {
        let store = Store::open(&cfg.state_dir, cfg.chaos_die_at_checkpoint)?;
        Ok(Fleet {
            store,
            retry: RetryPolicy::default(),
            corpora: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            n_live: AtomicI64::new(0),
            n_done: AtomicI64::new(0),
            n_failed: AtomicI64::new(0),
            cfg,
        })
    }

    /// The telemetry registry.
    pub fn obs(&self) -> &Registry {
        &self.cfg.obs
    }

    /// The flight recorder, when one is configured.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.cfg.flight.as_ref()
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Request a graceful drain (idempotent).
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn corpus(&self, spec: &str) -> Result<Arc<Corpus>, AlemError> {
        let mut cache = self.corpora.lock();
        if let Some(c) = cache.get(spec) {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(dataset::build(spec)?);
        cache.insert(spec.to_string(), Arc::clone(&c));
        Ok(c)
    }

    fn get(&self, name: &str) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().get(name).map(Arc::clone)
    }

    fn counts(&self) -> (u64, u64, u64) {
        (
            self.n_live.load(Ordering::SeqCst).max(0) as u64,
            self.n_done.load(Ordering::SeqCst).max(0) as u64,
            self.n_failed.load(Ordering::SeqCst).max(0) as u64,
        )
    }

    fn update_gauge(&self) {
        let (live, _, _) = self.counts();
        self.cfg.obs.gauge_set("serve.sessions_active", live);
    }

    fn note_live(&self) {
        self.n_live.fetch_add(1, Ordering::SeqCst);
        self.update_gauge();
    }

    fn note_done(&self) {
        self.n_live.fetch_sub(1, Ordering::SeqCst);
        self.n_done.fetch_add(1, Ordering::SeqCst);
        self.update_gauge();
    }

    fn note_failed(&self) {
        self.n_live.fetch_sub(1, Ordering::SeqCst);
        self.n_failed.fetch_add(1, Ordering::SeqCst);
        self.update_gauge();
    }

    /// Dispatch one parsed request. Never panics; never blocks beyond the
    /// named session's own lock. A request carrying a `trace_id` runs
    /// inside an [`alem_obs::trace_scope`], so every span and counter it
    /// records — dispatch, session machine, checkpoint writes — is
    /// stamped with the id; the response echoes it back.
    pub fn handle(&self, req: &Request) -> Response {
        if let Some(t) = req.trace_id.as_deref() {
            if !proto::valid_trace_id(t) {
                return Response::err(
                    proto::ERR_INVALID,
                    "bad trace_id (want 1..=128 printable ASCII bytes)",
                );
            }
        }
        let _trace = alem_obs::trace_scope(req.trace_id.as_deref());
        let mut response = match req.op.as_str() {
            "open" => self.on_open(req),
            "answer" => self.on_answer(req),
            "poll" => self.on_poll(req),
            "status" => self.on_status(),
            "healthz" => self.on_healthz(),
            "metrics" => self.on_metrics(),
            "crash" => self.on_crash(req),
            "drain" => {
                self.request_drain();
                Response::ok()
            }
            other => Response::err(proto::ERR_INVALID, format!("unknown op '{other}'")),
        };
        response.trace_id = req.trace_id.clone();
        response
    }

    fn on_open(&self, req: &Request) -> Response {
        if self.draining() {
            return Response::err(proto::ERR_DRAINING, "server is draining");
        }
        let Some(name) = req.session.as_deref() else {
            return Response::err(proto::ERR_INVALID, "open requires a session name");
        };
        if !proto::valid_session_name(name) {
            return Response::err(
                proto::ERR_INVALID,
                format!("bad session name '{name}' (want [A-Za-z0-9_-]{{1,64}})"),
            );
        }
        let (Some(spec), Some(seed), Some(strategy_name)) =
            (req.dataset.as_deref(), req.seed, req.strategy.as_deref())
        else {
            return Response::err(proto::ERR_INVALID, "open requires dataset, seed, strategy");
        };
        if self.get(name).is_some() {
            return Response::err(
                proto::ERR_EXISTS,
                format!("session '{name}' already exists"),
            );
        }
        let (live, _, _) = self.counts();
        if live as usize >= self.cfg.max_sessions {
            self.cfg.obs.counter_add("serve.backpressure_rejects", 1);
            let backoff = self
                .windowed_retry_ms()
                .unwrap_or_else(|| self.retry.delay_for(1).as_millis() as u64);
            return Response::busy(
                backoff.max(25),
                format!("{live} live sessions (max {})", self.cfg.max_sessions),
            );
        }

        let defaults = dataset::default_params();
        let params = LoopParams {
            seed_size: req.seed_size.unwrap_or(defaults.seed_size),
            batch_size: req.batch_size.unwrap_or(defaults.batch_size),
            max_labels: req.max_labels.unwrap_or(defaults.max_labels),
            eval: defaults.eval,
            stop_at_f1: req.stop_at_f1,
        };
        let corpus = match self.corpus(spec) {
            Ok(c) => c,
            Err(e) => return Response::err(proto::ERR_INVALID, e.to_string()),
        };
        let strategy = match build_strategy(strategy_name) {
            Ok(s) => s,
            Err(e) => return Response::err(proto::ERR_INVALID, e.to_string()),
        };
        let meta = SessionMeta {
            session: name.to_string(),
            dataset: spec.to_string(),
            seed,
            strategy: strategy_name.to_string(),
            seed_size: params.seed_size,
            batch_size: params.batch_size,
            max_labels: params.max_labels,
            stop_at_f1: params.stop_at_f1,
            corpus_fingerprint: format!("{:016x}", corpus.content_fingerprint()),
        };
        if let Err(e) = self.store.save_meta(&meta) {
            return Response::err(proto::ERR_INVALID, format!("persisting meta: {e}"));
        }

        let mut machine = Box::new(Machine::new(strategy, params, self.machine_config()));
        let c = Arc::clone(&corpus);
        let call = catch_unwind(AssertUnwindSafe(|| machine.start(&c, seed)));
        let mut session = Session {
            name: name.to_string(),
            corpus,
            state: SessState::Live(machine),
            asked_at: Vec::new(),
            wave_span: None,
            wave_max_id: None,
            last_ckpt: None,
            resumed: false,
        };
        self.note_live();
        self.settle(&mut session, call);
        let response = self.session_response(&session);
        self.sessions
            .lock()
            .insert(name.to_string(), Arc::new(Mutex::new(session)));
        self.cfg.obs.counter_add("serve.sessions_opened", 1);
        self.update_gauge();
        response
    }

    fn machine_config(&self) -> SessionConfig {
        SessionConfig {
            // The fleet owns checkpoint scheduling; the machine only
            // snapshots boundaries.
            checkpoint_every: None,
            checkpoint_path: None,
            retry: self.retry.clone(),
            halt_after: None,
            max_stalled_iters: 5,
            obs: self.cfg.obs.clone(),
            // Sessions are many and small: give each one core and let
            // concurrency come from session-level interleaving.
            parallelism: Parallelism::sequential(),
        }
    }

    fn on_answer(&self, req: &Request) -> Response {
        let Some(name) = req.session.as_deref() else {
            return Response::err(proto::ERR_INVALID, "answer requires a session name");
        };
        let Some(example) = req.example else {
            return Response::err(proto::ERR_INVALID, "answer requires an example index");
        };
        let answer = if req.abstain == Some(true) {
            OracleAnswer::Abstain
        } else {
            match req.label {
                Some(l) => OracleAnswer::Label(l),
                None => {
                    return Response::err(proto::ERR_INVALID, "answer requires label or abstain")
                }
            }
        };
        let Some(sess) = self.get(name) else {
            return Response::err(
                proto::ERR_UNKNOWN_SESSION,
                format!("no session named '{name}'"),
            );
        };
        let mut s = sess.lock();
        if matches!(s.state, SessState::Live(_)) {
            self.deliver(&mut s, example, answer);
        }
        self.session_response(&s)
    }

    /// Deliver one answer into a live session, under supervision, with
    /// ignored-versus-applied accounting.
    fn deliver(&self, s: &mut Session, example: usize, answer: OracleAnswer) {
        let corpus = Arc::clone(&s.corpus);
        let SessState::Live(machine) = &mut s.state else {
            return;
        };
        let ignored_before = machine.ignored_answers();
        let call = catch_unwind(AssertUnwindSafe(|| {
            machine.deliver(&corpus, example, answer)
        }));
        if let Ok(Ok(())) = &call {
            if let SessState::Live(m) = &s.state {
                if m.ignored_answers() > ignored_before {
                    self.cfg.obs.counter_add("serve.answers_ignored", 1);
                } else {
                    self.cfg.obs.counter_add("serve.answers_applied", 1);
                }
            }
        }
        self.settle(s, call);
    }

    fn on_poll(&self, req: &Request) -> Response {
        let Some(name) = req.session.as_deref() else {
            return Response::err(proto::ERR_INVALID, "poll requires a session name");
        };
        let Some(sess) = self.get(name) else {
            return Response::err(
                proto::ERR_UNKNOWN_SESSION,
                format!("no session named '{name}'"),
            );
        };
        let s = sess.lock();
        self.session_response(&s)
    }

    /// `retry_after_ms` sized from actual recent throughput: the flight
    /// window's µs-per-freed-slot (sessions completed or failed free an
    /// admission slot). Falls back to the static [`RetryPolicy`] hint
    /// when no flight recorder is running or the window saw no slot free
    /// up — a constant is honest when there is no signal.
    fn windowed_retry_ms(&self) -> Option<u64> {
        let flight = self.cfg.flight.as_ref()?;
        let window_us = flight.window_us();
        if window_us == 0 {
            return None;
        }
        let freed = flight.window_counter("serve.sessions_completed")
            + flight.window_counter("serve.sessions_failed");
        if freed == 0 {
            return None;
        }
        Some((window_us / freed / 1000).clamp(25, 5_000))
    }

    fn on_status(&self) -> Response {
        let (live, done, failed) = self.counts();
        let mut r = Response::ok();
        r.active = Some(live);
        r.done = Some(done);
        r.failed = Some(failed);
        r.draining = Some(self.draining());
        // Same collect-then-lock-individually pattern as the deadline
        // sweeper: holding the sessions-map lock while taking session
        // locks would deadlock against transition sites.
        let sessions: Vec<Arc<Mutex<Session>>> =
            self.sessions.lock().values().map(Arc::clone).collect();
        let mut rows: Vec<(String, String)> = sessions
            .iter()
            .map(|sess| {
                let s = sess.lock();
                let state = match &s.state {
                    SessState::Live(_) => "awaiting_answers",
                    SessState::Done(_) => "done",
                    SessState::Poisoned(_) => "failed",
                };
                (s.name.clone(), state.to_string())
            })
            .collect();
        rows.sort();
        r.sessions = Some(rows);
        r
    }

    fn on_healthz(&self) -> Response {
        let (live, done, failed) = self.counts();
        let mut r = Response::ok();
        r.active = Some(live);
        r.done = Some(done);
        r.failed = Some(failed);
        r.draining = Some(self.draining());
        r.uptime_us = Some(self.cfg.obs.uptime_us());
        r
    }

    fn on_metrics(&self) -> Response {
        // One aggregate snapshot under the registry lock; everything
        // below — quantiles, Prometheus rendering — happens outside it.
        let mut snap = self.cfg.obs.snapshot();
        let mut r = Response::ok();
        r.counters = Some(
            FLEET_COUNTERS
                .iter()
                .map(|&name| {
                    (
                        name.to_string(),
                        snap.counters.get(name).copied().unwrap_or(0),
                    )
                })
                .collect(),
        );
        r.gauges = Some(
            snap.gauges
                .iter()
                .map(|(&name, &v)| (name.to_string(), v))
                .collect(),
        );
        if let Some(h) = snap.hists.get("serve.query_to_batch") {
            r.q2b_count = Some(h.count());
            r.q2b_p50_us = Some(h.quantile(0.5));
            r.q2b_p90_us = Some(h.quantile(0.9));
            r.q2b_p99_us = Some(h.quantile(0.99));
        }
        if let Some(flight) = &self.cfg.flight {
            let win = flight.window_hist("serve.query_to_batch");
            r.q2b_win_count = Some(win.count());
            r.q2b_win_p50_us = Some(win.quantile(0.5));
            r.q2b_win_p90_us = Some(win.quantile(0.9));
            r.q2b_win_p99_us = Some(win.quantile(0.99));
            r.window_us = Some(flight.window_us());
            snap.hists.insert("serve.query_to_batch.window", win);
        }
        r.text = Some(alem_obs::render_prometheus(&snap, FLEET_COUNTERS));
        r
    }

    fn on_crash(&self, req: &Request) -> Response {
        let Some(name) = req.session.as_deref() else {
            return Response::err(proto::ERR_INVALID, "crash requires a session name");
        };
        let Some(sess) = self.get(name) else {
            return Response::err(
                proto::ERR_UNKNOWN_SESSION,
                format!("no session named '{name}'"),
            );
        };
        let mut s = sess.lock();
        if matches!(s.state, SessState::Live(_)) {
            let call = catch_unwind(AssertUnwindSafe(|| -> Result<(), AlemError> {
                // alem-lint: allow(panic-reach) -- deliberate crash-injection op; the panic is caught by catch_unwind and settled as session state
                panic!("crash op requested for session '{name}'");
            }));
            self.settle(&mut s, call);
        }
        self.session_response(&s)
    }

    /// Post-advance bookkeeping shared by every machine-touching path:
    /// convert panics and errors into a poisoned session, detect
    /// completion, refresh wave stamps, and write due checkpoints.
    fn settle(
        &self,
        s: &mut Session,
        call: Result<Result<(), AlemError>, Box<dyn std::any::Any + Send>>,
    ) {
        match call {
            Err(payload) => {
                self.cfg.obs.counter_add("serve.worker_panics", 1);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                // Black-box the last window of telemetry before poisoning:
                // a final tick folds everything up to the panic into the
                // ring, so the dump answers "what was the fleet doing in
                // the seconds before this worker died".
                if let Some(flight) = &self.cfg.flight {
                    flight.tick();
                    match flight.dump_to_dir("postmortem") {
                        Ok(Some(path)) => {
                            eprintln!("alem-serve: post-mortem flight dump at {}", path.display())
                        }
                        Ok(None) => {}
                        Err(e) => eprintln!("alem-serve: flight dump failed: {e}"),
                    }
                }
                self.poison(s, format!("panic: {msg}"));
                return;
            }
            Ok(Err(e)) => {
                self.poison(s, e.to_string());
                return;
            }
            Ok(Ok(())) => {}
        }
        let machine_state = match &s.state {
            SessState::Live(m) => m.state(),
            _ => return,
        };
        match machine_state {
            MachineState::Done => self.complete(s),
            MachineState::AwaitingAnswers => {
                self.sync_wave(s);
                self.maybe_checkpoint(s);
            }
            // `halt_after` is never set and Created/Failed cannot follow a
            // successful call; treat defensively as a failure.
            other => self.poison(s, format!("unexpected machine state {other:?}")),
        }
    }

    fn poison(&self, s: &mut Session, reason: String) {
        if let Some(span) = s.wave_span.take() {
            span.finish();
        }
        s.asked_at.clear();
        s.wave_max_id = None;
        eprintln!("alem-serve: session '{}' poisoned: {reason}", s.name);
        s.state = SessState::Poisoned(reason);
        self.cfg.obs.counter_add("serve.sessions_failed", 1);
        self.note_failed();
    }

    fn complete(&self, s: &mut Session) {
        if let Some(span) = s.wave_span.take() {
            span.finish();
        }
        s.asked_at.clear();
        s.wave_max_id = None;
        let SessState::Live(machine) = &mut s.state else {
            return;
        };
        let iterations = machine.iterations_done();
        let labels_used = machine.labels_used();
        let Some(result) = machine.take_result() else {
            self.poison(s, "machine done without a result".into());
            return;
        };
        let done = DoneRecord {
            session: s.name.clone(),
            fingerprint: result.deterministic_fingerprint(),
            iterations,
            labels_used,
            best_f1: result.best_f1(),
        };
        if let Err(e) = self.store.save_done(&done) {
            eprintln!(
                "alem-serve: session '{}' done record not persisted: {e}",
                s.name
            );
        }
        s.state = SessState::Done(done);
        self.cfg.obs.counter_add("serve.sessions_completed", 1);
        self.note_done();
    }

    /// Refresh wave stamps and the query-to-batch span. Waves are keyed
    /// by their max request id: ids are monotonic and a wave only ever
    /// shrinks, so a changed max id means a new wave was emitted.
    fn sync_wave(&self, s: &mut Session) {
        let SessState::Live(machine) = &s.state else {
            return;
        };
        let pending = machine.pending().to_vec();
        if pending.is_empty() {
            if let Some(span) = s.wave_span.take() {
                span.finish();
            }
            s.asked_at.clear();
            s.wave_max_id = None;
            return;
        }
        let max_id = pending.iter().map(|q| q.id).max().unwrap_or(0);
        if s.wave_max_id == Some(max_id) {
            s.asked_at
                .retain(|&(e, _)| pending.iter().any(|q| q.example == e));
            return;
        }
        if let Some(span) = s.wave_span.take() {
            span.finish();
        }
        s.wave_span = Some(self.cfg.obs.span("serve.query_to_batch"));
        s.wave_max_id = Some(max_id);
        let t = now();
        s.asked_at = pending.iter().map(|q| (q.example, t)).collect();
    }

    fn maybe_checkpoint(&self, s: &mut Session) {
        let every = self.cfg.checkpoint_every;
        if every == 0 {
            return;
        }
        let SessState::Live(machine) = &s.state else {
            return;
        };
        let Some(k) = machine.boundary_iter() else {
            return;
        };
        if k == 0 || !k.is_multiple_of(every) || s.last_ckpt == Some(k) {
            return;
        }
        let Some(ckpt) = machine.checkpoint() else {
            return;
        };
        let span = self.cfg.obs.span("checkpoint.write");
        match self.store.save_checkpoint(&s.name, &ckpt) {
            Ok(()) => s.last_ckpt = Some(k),
            Err(e) => eprintln!("alem-serve: checkpoint for '{}' failed: {e}", s.name),
        }
        span.finish();
    }

    /// Convert every overdue pending query into an abstention. Called
    /// periodically by the deadline sweeper thread. Returns how many
    /// answers were timed out this sweep.
    pub fn sweep_deadlines(&self) -> u64 {
        let sessions: Vec<Arc<Mutex<Session>>> =
            self.sessions.lock().values().map(Arc::clone).collect();
        let deadline = self.cfg.answer_deadline;
        let t = now();
        let mut timed_out = 0;
        for sess in sessions {
            let mut s = sess.lock();
            while let Some(&(example, _)) = s
                .asked_at
                .iter()
                .find(|&&(_, asked)| t.duration_since(asked) > deadline)
            {
                if !matches!(s.state, SessState::Live(_)) {
                    break;
                }
                self.cfg.obs.counter_add("serve.answers_timeout", 1);
                timed_out += 1;
                self.deliver(&mut s, example, OracleAnswer::Abstain);
            }
        }
        timed_out
    }

    /// Checkpoint every live session's latest boundary (graceful drain).
    /// Sessions still in their seed phase have no boundary yet; their
    /// metas suffice — a restart replays the seed draw deterministically.
    pub fn checkpoint_all(&self) -> usize {
        let sessions: Vec<Arc<Mutex<Session>>> =
            self.sessions.lock().values().map(Arc::clone).collect();
        let mut written = 0;
        for sess in sessions {
            let mut s = sess.lock();
            let SessState::Live(machine) = &s.state else {
                continue;
            };
            let Some(ckpt) = machine.checkpoint() else {
                continue;
            };
            let k = ckpt.iter_no;
            let span = self.cfg.obs.span("checkpoint.write");
            match self.store.save_checkpoint(&s.name, &ckpt) {
                Ok(()) => {
                    s.last_ckpt = Some(k);
                    written += 1;
                }
                Err(e) => eprintln!("alem-serve: drain checkpoint for '{}' failed: {e}", s.name),
            }
            span.finish();
        }
        written
    }

    /// Cold restart: re-hydrate every session found in the state dir.
    /// Returns `(live, done, failed)` counts. Failures are per-session —
    /// a corrupt checkpoint poisons that session and restores the rest.
    pub fn restore(&self) -> Result<(u64, u64, u64), AlemError> {
        let span = self.cfg.obs.span("serve.fleet_restart");
        let names = self.store.list_sessions()?;
        for name in names {
            let session = match self.restore_one(&name) {
                Ok(s) => s,
                Err(e) => {
                    self.cfg.obs.counter_add("serve.sessions_failed", 1);
                    self.n_failed.fetch_add(1, Ordering::SeqCst);
                    eprintln!("alem-serve: restore of '{name}' failed: {e}");
                    Session {
                        name: name.clone(),
                        corpus: Arc::new(Corpus::from_features(vec![vec![0.0]], vec![false])),
                        state: SessState::Poisoned(e.to_string()),
                        asked_at: Vec::new(),
                        wave_span: None,
                        wave_max_id: None,
                        last_ckpt: None,
                        resumed: true,
                    }
                }
            };
            self.sessions
                .lock()
                .insert(name, Arc::new(Mutex::new(session)));
        }
        span.finish();
        self.update_gauge();
        Ok(self.counts())
    }

    fn restore_one(&self, name: &str) -> Result<Session, AlemError> {
        let meta = self.store.load_meta(name)?;
        let corpus = self.corpus(&meta.dataset)?;
        let fp = format!("{:016x}", corpus.content_fingerprint());
        if fp != meta.corpus_fingerprint {
            return Err(AlemError::CheckpointCorrupt(format!(
                "dataset '{}' rebuilt with fingerprint {fp}, meta recorded {}",
                meta.dataset, meta.corpus_fingerprint
            )));
        }
        if let Some(done) = self.store.load_done(name) {
            self.n_done.fetch_add(1, Ordering::SeqCst);
            return Ok(Session {
                name: name.to_string(),
                corpus,
                state: SessState::Done(done),
                asked_at: Vec::new(),
                wave_span: None,
                wave_max_id: None,
                last_ckpt: None,
                resumed: true,
            });
        }
        let params = LoopParams {
            seed_size: meta.seed_size,
            batch_size: meta.batch_size,
            max_labels: meta.max_labels,
            eval: dataset::default_params().eval,
            stop_at_f1: meta.stop_at_f1,
        };
        let strategy = build_strategy(&meta.strategy)?;
        let mut machine = Box::new(Machine::new(strategy, params, self.machine_config()));
        let c = Arc::clone(&corpus);
        let from_ckpt = self.store.has_checkpoint(name);
        let call = if from_ckpt {
            let ckpt = self.store.load_checkpoint(name)?;
            catch_unwind(AssertUnwindSafe(|| machine.resume(&c, ckpt)))
        } else {
            // Killed before the first checkpointable boundary: replay the
            // whole (deterministic) session from its seed.
            catch_unwind(AssertUnwindSafe(|| machine.start(&c, meta.seed)))
        };
        let mut session = Session {
            name: name.to_string(),
            corpus,
            state: SessState::Live(machine),
            asked_at: Vec::new(),
            wave_span: None,
            wave_max_id: None,
            last_ckpt: None,
            resumed: true,
        };
        self.note_live();
        self.settle(&mut session, call);
        if from_ckpt {
            self.cfg.obs.counter_add("serve.sessions_resumed", 1);
        }
        Ok(session)
    }

    fn session_response(&self, s: &Session) -> Response {
        let mut r = Response::ok();
        r.resumed = Some(s.resumed);
        match &s.state {
            SessState::Live(m) => {
                r.state = Some("awaiting_answers".to_string());
                r.pending = Some(m.pending().iter().map(|q| q.example).collect());
                r.iterations = Some(m.iterations_done());
                r.labels_used = Some(m.labels_used());
            }
            SessState::Done(d) => {
                r.state = Some("done".to_string());
                r.pending = Some(Vec::new());
                r.iterations = Some(d.iterations);
                r.labels_used = Some(d.labels_used);
                r.fingerprint = Some(d.fingerprint.clone());
                r.best_f1 = Some(d.best_f1);
            }
            SessState::Poisoned(reason) => {
                r.state = Some("failed".to_string());
                r.pending = Some(Vec::new());
                r.detail = Some(reason.clone());
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use alem_core::oracle::AnswerKey;

    fn fleet(tag: &str, max_sessions: usize) -> Fleet {
        let dir = std::env::temp_dir().join(format!("alem-fleet-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Fleet::new(FleetConfig {
            state_dir: dir,
            max_sessions,
            answer_deadline: Duration::from_secs(60),
            checkpoint_every: 3,
            obs: Registry::enabled(),
            flight: None,
            chaos_die_at_checkpoint: None,
        })
        .unwrap()
    }

    fn drive_to_completion(fleet: &Fleet, name: &str, seed: u64) -> Response {
        let corpus = dataset::build("toy").unwrap();
        let key = AnswerKey::perfect(seed);
        for _ in 0..100_000 {
            let r = fleet.handle(&Request::poll(name));
            match r.state.as_deref() {
                Some("awaiting_answers") => {
                    let pending = r.pending.clone().unwrap_or_default();
                    assert!(!pending.is_empty(), "live session with empty wave");
                    for e in pending {
                        let answer = key.answer(e, corpus.truth(e));
                        let req = match answer {
                            OracleAnswer::Label(l) => Request::answer(name, e, l),
                            OracleAnswer::Abstain => Request::abstain(name, e),
                        };
                        assert!(fleet.handle(&req).ok);
                    }
                }
                _ => return r,
            }
        }
        panic!("session '{name}' did not terminate");
    }

    #[test]
    fn served_session_matches_reference_fingerprint() {
        let fleet = fleet("fp", 8);
        assert!(fleet.handle(&Request::open("s1", "toy", 41, "margin")).ok);
        let done = drive_to_completion(&fleet, "s1", 41);
        assert_eq!(done.state.as_deref(), Some("done"));
        let reference = dataset::reference_fingerprint(
            "toy",
            41,
            build_strategy("margin").unwrap(),
            &dataset::default_params(),
        )
        .unwrap();
        assert_eq!(done.fingerprint.as_deref(), Some(reference.as_str()));
        assert!(fleet.obs().counter_value("serve.sessions_completed") == 1);
    }

    #[test]
    fn duplicates_and_unknown_examples_are_ignored() {
        let fleet = fleet("dup", 8);
        let r = fleet.handle(&Request::open("s1", "toy", 5, "margin"));
        let first = r.pending.unwrap()[0];
        // Unknown example: ignored, counted, session unaffected.
        assert!(fleet.handle(&Request::answer("s1", usize::MAX, true)).ok);
        assert_eq!(fleet.obs().counter_value("serve.answers_ignored"), 1);
        // Real answer applies; immediate duplicate is ignored.
        let corpus = dataset::build("toy").unwrap();
        assert!(
            fleet
                .handle(&Request::answer("s1", first, corpus.truth(first)))
                .ok
        );
        assert!(
            fleet
                .handle(&Request::answer("s1", first, !corpus.truth(first)))
                .ok
        );
        assert_eq!(fleet.obs().counter_value("serve.answers_applied"), 1);
        assert_eq!(fleet.obs().counter_value("serve.answers_ignored"), 2);
        // The contradicting duplicate changed nothing: run completes with
        // the reference fingerprint.
        let done = drive_to_completion(&fleet, "s1", 5);
        let reference = dataset::reference_fingerprint(
            "toy",
            5,
            build_strategy("margin").unwrap(),
            &dataset::default_params(),
        )
        .unwrap();
        assert_eq!(done.fingerprint.as_deref(), Some(reference.as_str()));
    }

    #[test]
    fn healthz_reports_uptime_and_counts() {
        let fleet = fleet("hz", 8);
        fleet.handle(&Request::open("h1", "toy", 2, "margin"));
        let r = fleet.handle(&Request::new("healthz"));
        assert!(r.ok);
        assert_eq!(r.active, Some(1));
        assert_eq!(r.draining, Some(false));
        assert!(r.uptime_us.unwrap() > 0);
    }

    #[test]
    fn status_lists_per_session_states() {
        let fleet = fleet("st", 8);
        fleet.handle(&Request::open("alpha", "toy", 2, "margin"));
        fleet.handle(&Request::open("beta", "toy", 3, "margin"));
        let mut crash = Request::new("crash");
        crash.session = Some("beta".into());
        fleet.handle(&crash);
        let r = fleet.handle(&Request::new("status"));
        assert_eq!(
            r.sessions.unwrap(),
            vec![
                ("alpha".to_string(), "awaiting_answers".to_string()),
                ("beta".to_string(), "failed".to_string()),
            ]
        );
    }

    #[test]
    fn metrics_exposition_covers_every_fleet_counter() {
        let fleet = fleet("prom", 8);
        fleet.handle(&Request::open("m1", "toy", 7, "margin"));
        // Complete at least one wave so `serve.query_to_batch` has closed
        // spans to summarize.
        drive_to_completion(&fleet, "m1", 7);
        let r = fleet.handle(&Request::new("metrics"));
        assert!(r.ok);
        let counters = r.counters.unwrap();
        assert_eq!(counters.len(), FLEET_COUNTERS.len());
        let text = r.text.unwrap();
        for name in FLEET_COUNTERS {
            let sanitized = name.replace('.', "_");
            assert!(
                text.contains(&format!("# TYPE {sanitized} counter")),
                "family {name} missing from exposition:\n{text}"
            );
        }
        assert!(text.contains("serve_sessions_active"));
        assert!(text.contains("serve_query_to_batch{quantile=\"0.9\"}"));
        // No flight recorder configured → no windowed fields.
        assert!(r.q2b_win_count.is_none());
    }

    #[test]
    fn trace_id_is_validated_echoed_and_stamped_on_spans() {
        let fleet = fleet("trace", 8);
        let mut open = Request::open("t1", "toy", 4, "margin");
        open.trace_id = Some("labeler-9/interaction-3".into());
        let r = fleet.handle(&open);
        assert!(r.ok);
        assert_eq!(r.trace_id.as_deref(), Some("labeler-9/interaction-3"));
        // The wave span opened by this request carries the trace id.
        let traced: Vec<String> = fleet
            .obs()
            .events()
            .iter()
            .filter(|e| e.trace.as_deref() == Some("labeler-9/interaction-3"))
            .map(|e| e.name.to_string())
            .collect();
        assert!(!traced.is_empty(), "no events carried the trace id");
        let mut bad = Request::poll("t1");
        bad.trace_id = Some("has\u{7f}control".into());
        let r = fleet.handle(&bad);
        assert!(!r.ok);
        assert_eq!(r.error.as_deref(), Some(proto::ERR_INVALID));
    }

    #[test]
    fn panic_leaves_a_flight_postmortem_and_windowed_retry_tracks_throughput() {
        let dir = std::env::temp_dir().join(format!("alem-fleet-{}-fl", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let obs = Registry::enabled();
        let flight = FlightRecorder::new(obs.clone(), 16).with_dump_dir(dir.join("flight"));
        let fleet = Fleet::new(FleetConfig {
            state_dir: dir.clone(),
            max_sessions: 1,
            answer_deadline: Duration::from_secs(60),
            checkpoint_every: 3,
            obs: obs.clone(),
            flight: Some(flight.clone()),
            chaos_die_at_checkpoint: None,
        })
        .unwrap();
        fleet.handle(&Request::open("victim", "toy", 11, "margin"));
        // Complete a session so the window records freed capacity, then
        // tick so the interval lands in the ring.
        drive_to_completion(&fleet, "victim", 11);
        flight.tick();
        assert!(fleet.handle(&Request::open("next", "toy", 12, "margin")).ok);
        let busy = fleet.handle(&Request::open("over", "toy", 13, "margin"));
        assert_eq!(busy.error.as_deref(), Some(proto::ERR_BUSY));
        // One completion in the window → retry hint is window/1 clamped
        // to [25, 5000], i.e. the windowed path (not the static 25ms
        // lower bound is possible, but it must be within the clamp).
        let hint = busy.retry_after_ms.unwrap();
        assert!((25..=5_000).contains(&hint), "hint {hint}");
        // A worker panic writes a post-mortem dump.
        let mut crash = Request::new("crash");
        crash.session = Some("next".into());
        fleet.handle(&crash);
        let dumps: Vec<_> = std::fs::read_dir(dir.join("flight"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("postmortem-") && n.ends_with(".jsonl"))
            .collect();
        assert_eq!(dumps.len(), 1, "expected one post-mortem dump: {dumps:?}");
        assert_eq!(obs.counter_value("obs.flight.dumps"), 1);
        // The metrics op now reports windowed q2b quantiles.
        let m = fleet.handle(&Request::new("metrics"));
        assert!(m.q2b_win_count.unwrap() > 0);
        assert!(m.window_us.unwrap() > 0);
        assert!(m.text.unwrap().contains("serve_query_to_batch_window"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_control_rejects_with_retry_hint() {
        let fleet = fleet("busy", 1);
        assert!(fleet.handle(&Request::open("a", "toy", 1, "margin")).ok);
        let r = fleet.handle(&Request::open("b", "toy", 2, "margin"));
        assert!(!r.ok);
        assert_eq!(r.error.as_deref(), Some(proto::ERR_BUSY));
        assert!(r.retry_after_ms.unwrap_or(0) > 0);
        assert_eq!(fleet.obs().counter_value("serve.backpressure_rejects"), 1);
        // Duplicate name is a distinct error.
        let r = fleet.handle(&Request::open("a", "toy", 1, "margin"));
        assert_eq!(r.error.as_deref(), Some(proto::ERR_EXISTS));
    }

    #[test]
    fn crash_poisons_one_session_not_the_fleet() {
        let fleet = fleet("crash", 8);
        fleet.handle(&Request::open("victim", "toy", 9, "margin"));
        fleet.handle(&Request::open("bystander", "toy", 10, "margin"));
        let mut crash = Request::new("crash");
        crash.session = Some("victim".into());
        let r = fleet.handle(&crash);
        assert_eq!(r.state.as_deref(), Some("failed"));
        assert!(r.detail.unwrap().contains("panic"));
        assert_eq!(fleet.obs().counter_value("serve.worker_panics"), 1);
        // The bystander still runs to its reference fingerprint.
        let done = drive_to_completion(&fleet, "bystander", 10);
        assert_eq!(done.state.as_deref(), Some("done"));
        let (live, done_n, failed) = fleet.counts();
        assert_eq!((live, done_n, failed), (0, 1, 1));
    }

    #[test]
    fn deadline_sweep_converts_overdue_queries_to_abstentions() {
        let dir = std::env::temp_dir().join(format!("alem-fleet-{}-ddl", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fleet = Fleet::new(FleetConfig {
            state_dir: dir,
            max_sessions: 4,
            answer_deadline: Duration::from_millis(0),
            checkpoint_every: 0,
            obs: Registry::enabled(),
            flight: None,
            chaos_die_at_checkpoint: None,
        })
        .unwrap();
        fleet.handle(&Request::open("slow", "toy", 3, "margin"));
        std::thread::sleep(Duration::from_millis(5));
        assert!(fleet.sweep_deadlines() > 0);
        assert!(fleet.obs().counter_value("serve.answers_timeout") > 0);
        // All-abstain sessions eventually fail through the stalled guard
        // (or die at seeding) rather than hanging the fleet.
        for _ in 0..10_000 {
            std::thread::sleep(Duration::from_millis(1));
            fleet.sweep_deadlines();
            let r = fleet.handle(&Request::poll("slow"));
            if r.state.as_deref() == Some("failed") {
                return;
            }
        }
        panic!("silent session never failed");
    }
}
