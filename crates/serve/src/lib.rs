#![forbid(unsafe_code)]
//! `alem-serve`: a crash-tolerant multi-session active-learning service.
//!
//! The blocking session loop in `alem-core` assumes one process, one
//! session, and an oracle that answers inline. This crate hosts **many
//! concurrent labeling sessions** behind a line-oriented JSON protocol
//! (one request object per line, one response object per line) over a
//! Unix-domain or TCP socket, with the failure model a real labeling
//! deployment needs:
//!
//! - every session is a resumable [`alem_core::session::SessionMachine`]
//!   checkpointed at iteration boundaries, so a `SIGKILL` mid-run loses at
//!   most one in-flight wave of answers;
//! - per-session supervision: a panic inside one session's strategy is
//!   caught and poisons *that session only* — the fleet keeps serving;
//! - deadline enforcement: an answer that never arrives is converted to an
//!   abstention after a configurable deadline (the service-side analogue
//!   of [`alem_core::oracle::AbstainingOracle`] /
//!   [`alem_core::oracle::LatencyOracle`] semantics);
//! - admission control: past `max_sessions` the server answers
//!   `{"ok":false,"error":"busy","retry_after_ms":…}` instead of queueing
//!   unboundedly — clients back off with the existing
//!   [`alem_core::oracle::RetryPolicy`] schedule;
//! - malformed frames are rejected with a structured error on the same
//!   connection (never a disconnect, never a crash);
//! - `SIGTERM`/`SIGINT` (via the vendored `sigshim`) or a `drain` request
//!   triggers a graceful drain: stop accepting, finish in-flight requests,
//!   checkpoint every live session, exit 0;
//! - a cold restart re-hydrates the whole fleet from the state directory,
//!   re-validating each checkpoint against the corpus content fingerprint.
//!
//! Because the machine consumes answers *by example* (waves apply only
//! when complete, in the selector's order), a session's
//! `deterministic_fingerprint` is invariant to everything the transport
//! can do to answers — duplication, reordering, reconnects, kills and
//! restarts — as long as every example eventually gets the same answer
//! value. The `serve-load` chaos harness asserts exactly that: hundreds of
//! interleaved sessions under injected disconnects, duplicate and
//! out-of-order answers, truncated frames, and a mid-run kill-and-restart
//! must all finish byte-identical to a fault-free in-process run.

pub mod client;
pub mod dataset;
pub mod fleet;
pub mod proto;
pub mod server;
pub mod store;
