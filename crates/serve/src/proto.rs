//! Wire frames: one JSON object per line in each direction.
//!
//! The protocol is deliberately flat — a single [`Request`] shape whose
//! relevance of fields depends on `op`, and a single [`Response`] shape —
//! because the vendored serde shim derives named structs with `Option`
//! fields tolerating absence, and because a flat shape keeps malformed
//! input diagnosable: any parse failure is answered with
//! `{"ok":false,"error":"malformed","detail":…}` on the same connection.
//!
//! Operations:
//!
//! | `op`      | fields                                            | effect |
//! |-----------|---------------------------------------------------|--------|
//! | `open`    | `session`, `dataset`, `seed`, `strategy`, params  | create a session; emits its first pending query |
//! | `answer`  | `session`, `example`, `label` or `abstain`        | deliver one oracle answer |
//! | `poll`    | `session`                                         | state + pending queries |
//! | `status`  | —                                                 | fleet-wide counts + per-session states |
//! | `healthz` | —                                                 | liveness: uptime, counts, draining flag |
//! | `metrics` | —                                                 | counters, gauges, cumulative + windowed query-to-batch quantiles, and a Prometheus text exposition in `text` |
//! | `crash`   | `session`                                         | testing hook: panic inside the session's supervised region |
//! | `drain`   | —                                                 | graceful shutdown: checkpoint all, exit |
//!
//! Any request may carry a `trace_id` (`[ -~]{1,128}`, i.e. printable
//! ASCII): the server enters an `alem_obs::trace_scope` for the request,
//! so every span and counter the request touches — connection handler,
//! fleet dispatch, session machine, checkpoint writes — is stamped with
//! the id in the JSONL and Chrome-trace sinks, and the response echoes it
//! back for client-side correlation.
//!
//! Fingerprints travel as 16-hex-digit strings (the shim renders `u64`
//! through `i64`, which would turn high-bit fingerprints negative in the
//! JSON text).

use serde::{Deserialize, Serialize};

/// Error code for an unparsable frame.
pub const ERR_MALFORMED: &str = "malformed";
/// Error code for admission-control rejection (retry later).
pub const ERR_BUSY: &str = "busy";
/// Error code for an `op` naming no live or finished session.
pub const ERR_UNKNOWN_SESSION: &str = "unknown_session";
/// Error code for opening a session name that already exists.
pub const ERR_EXISTS: &str = "exists";
/// Error code for requests arriving while the server is draining.
pub const ERR_DRAINING: &str = "draining";
/// Error code for a request that is well-formed JSON but invalid
/// (unknown op, missing field, bad dataset/strategy, bad session name).
pub const ERR_INVALID: &str = "invalid";

/// One client request. Which fields matter depends on `op` (see the
/// module docs); unknown extra fields are ignored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Operation name.
    pub op: String,
    /// Session name (`[A-Za-z0-9_-]{1,64}`).
    pub session: Option<String>,
    /// Dataset spec understood by [`crate::dataset::build`] (`open`).
    pub dataset: Option<String>,
    /// Master seed for the session (`open`).
    pub seed: Option<u64>,
    /// Strategy name understood by [`crate::fleet::build_strategy`] (`open`).
    pub strategy: Option<String>,
    /// Seed draw size (`open`; default 12).
    pub seed_size: Option<usize>,
    /// Labels per iteration (`open`; default 8).
    pub batch_size: Option<usize>,
    /// Total label budget (`open`; default 80).
    pub max_labels: Option<usize>,
    /// Early-stop F1 target (`open`; default none).
    pub stop_at_f1: Option<f64>,
    /// Example index being answered (`answer`).
    pub example: Option<usize>,
    /// The label (`answer`; ignored when `abstain` is true).
    pub label: Option<bool>,
    /// Deliver an abstention instead of a label (`answer`).
    pub abstain: Option<bool>,
    /// Client-supplied correlation id (any op); see the module docs.
    pub trace_id: Option<String>,
}

impl Request {
    /// An empty request for `op` (fields default to `None`).
    pub fn new(op: &str) -> Self {
        Request {
            op: op.to_string(),
            session: None,
            dataset: None,
            seed: None,
            strategy: None,
            seed_size: None,
            batch_size: None,
            max_labels: None,
            stop_at_f1: None,
            example: None,
            label: None,
            abstain: None,
            trace_id: None,
        }
    }

    /// An `open` request with the required fields.
    pub fn open(session: &str, dataset: &str, seed: u64, strategy: &str) -> Self {
        let mut r = Request::new("open");
        r.session = Some(session.to_string());
        r.dataset = Some(dataset.to_string());
        r.seed = Some(seed);
        r.strategy = Some(strategy.to_string());
        r
    }

    /// An `answer` request delivering `label` for `example`.
    pub fn answer(session: &str, example: usize, label: bool) -> Self {
        let mut r = Request::new("answer");
        r.session = Some(session.to_string());
        r.example = Some(example);
        r.label = Some(label);
        r
    }

    /// An `answer` request delivering an abstention for `example`.
    pub fn abstain(session: &str, example: usize) -> Self {
        let mut r = Request::new("answer");
        r.session = Some(session.to_string());
        r.example = Some(example);
        r.abstain = Some(true);
        r
    }

    /// A `poll` request for `session`.
    pub fn poll(session: &str) -> Self {
        let mut r = Request::new("poll");
        r.session = Some(session.to_string());
        r
    }
}

/// One server response. `ok` distinguishes success from failure; the rest
/// is op-specific and absent when irrelevant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request was accepted.
    pub ok: bool,
    /// Error code (`ok == false` only): see the `ERR_*` constants.
    pub error: Option<String>,
    /// Human-readable diagnostic accompanying `error` or a state change.
    pub detail: Option<String>,
    /// Suggested client backoff before retrying (`busy` only).
    pub retry_after_ms: Option<u64>,
    /// Session state: `awaiting_answers`, `done`, or `failed`.
    pub state: Option<String>,
    /// Example indices the session is waiting on.
    pub pending: Option<Vec<usize>>,
    /// Iterations fully recorded so far (or in the final result).
    pub iterations: Option<usize>,
    /// Labels consumed so far.
    pub labels_used: Option<usize>,
    /// `RunResult::deterministic_fingerprint` once `state == "done"`,
    /// rendered as hex digits.
    pub fingerprint: Option<String>,
    /// Best F1 reached, once done.
    pub best_f1: Option<f64>,
    /// Whether this session was re-hydrated from a checkpoint after a
    /// restart (as opposed to running in its original process).
    pub resumed: Option<bool>,
    /// Fleet status: live sessions.
    pub active: Option<u64>,
    /// Fleet status: completed sessions.
    pub done: Option<u64>,
    /// Fleet status: poisoned/failed sessions.
    pub failed: Option<u64>,
    /// Fleet status: whether a drain is in progress.
    pub draining: Option<bool>,
    /// Metrics: counter name/value pairs.
    pub counters: Option<Vec<(String, u64)>>,
    /// Metrics: closed `serve.query_to_batch` spans.
    pub q2b_count: Option<u64>,
    /// Metrics: query-to-batch latency p50 (µs).
    pub q2b_p50_us: Option<u64>,
    /// Metrics: query-to-batch latency p90 (µs).
    pub q2b_p90_us: Option<u64>,
    /// Metrics: query-to-batch latency p99 (µs).
    pub q2b_p99_us: Option<u64>,
    /// Echo of the request's `trace_id`, for client-side correlation.
    pub trace_id: Option<String>,
    /// Metrics: gauge name/value pairs.
    pub gauges: Option<Vec<(String, u64)>>,
    /// Metrics: Prometheus text exposition (all counter families, gauges,
    /// and summary quantiles), rendered from a registry snapshot taken
    /// outside the lock.
    pub text: Option<String>,
    /// Metrics: `serve.query_to_batch` spans closed inside the flight
    /// window (absent when no flight recorder is running).
    pub q2b_win_count: Option<u64>,
    /// Metrics: windowed query-to-batch p50 (µs).
    pub q2b_win_p50_us: Option<u64>,
    /// Metrics: windowed query-to-batch p90 (µs).
    pub q2b_win_p90_us: Option<u64>,
    /// Metrics: windowed query-to-batch p99 (µs).
    pub q2b_win_p99_us: Option<u64>,
    /// Metrics: µs covered by the flight window.
    pub window_us: Option<u64>,
    /// Status: per-session `(name, state)` pairs, sorted by name.
    pub sessions: Option<Vec<(String, String)>>,
    /// Healthz: µs since the server's telemetry epoch.
    pub uptime_us: Option<u64>,
}

impl Response {
    /// A bare success.
    pub fn ok() -> Self {
        Response {
            ok: true,
            error: None,
            detail: None,
            retry_after_ms: None,
            state: None,
            pending: None,
            iterations: None,
            labels_used: None,
            fingerprint: None,
            best_f1: None,
            resumed: None,
            active: None,
            done: None,
            failed: None,
            draining: None,
            counters: None,
            q2b_count: None,
            q2b_p50_us: None,
            q2b_p90_us: None,
            q2b_p99_us: None,
            trace_id: None,
            gauges: None,
            text: None,
            q2b_win_count: None,
            q2b_win_p50_us: None,
            q2b_win_p90_us: None,
            q2b_win_p99_us: None,
            window_us: None,
            sessions: None,
            uptime_us: None,
        }
    }

    /// A failure with `code` and a diagnostic.
    pub fn err(code: &str, detail: impl Into<String>) -> Self {
        let mut r = Response::ok();
        r.ok = false;
        r.error = Some(code.to_string());
        r.detail = Some(detail.into());
        r
    }

    /// The `busy` rejection with its backoff hint.
    pub fn busy(retry_after_ms: u64, detail: impl Into<String>) -> Self {
        let mut r = Response::err(ERR_BUSY, detail);
        r.retry_after_ms = Some(retry_after_ms);
        r
    }
}

/// Serialize a frame to its wire line (no trailing newline).
pub fn encode<T: Serialize>(frame: &T) -> String {
    // The shim's to_string cannot fail on these derive shapes.
    serde_json::to_string(frame).unwrap_or_else(|_| "{}".to_string())
}

/// Parse one request line. `Err` is the malformed-frame diagnostic.
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line.trim()).map_err(|e| e.to_string())
}

/// Parse one response line (client side).
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde_json::from_str::<Response>(line.trim()).map_err(|e| e.to_string())
}

/// Whether `name` is acceptable as a session name (it becomes part of
/// checkpoint file names, so the alphabet is strict).
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Whether `id` is acceptable as a client-supplied trace id: printable
/// ASCII, at most 128 bytes (it travels into trace sinks verbatim, so no
/// control characters).
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty() && id.len() <= 128 && id.bytes().all(|b| (0x20..=0x7e).contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let r = Request::open("s1", "toy", 7, "margin");
        let line = encode(&r);
        let back = decode_request(&line).unwrap();
        assert_eq!(back.op, "open");
        assert_eq!(back.session.as_deref(), Some("s1"));
        assert_eq!(back.seed, Some(7));
        assert_eq!(back.example, None);
    }

    #[test]
    fn minimal_request_parses_with_missing_optionals() {
        let back = decode_request("{\"op\":\"status\"}").unwrap();
        assert_eq!(back.op, "status");
        assert!(back.session.is_none() && back.label.is_none());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(decode_request("{\"op\": tru").is_err());
        assert!(decode_request("[1,2,3]").is_err());
        assert!(decode_request("").is_err());
    }

    #[test]
    fn response_round_trips_with_counters() {
        let mut r = Response::ok();
        r.state = Some("awaiting_answers".into());
        r.pending = Some(vec![3, 1, 4]);
        r.counters = Some(vec![("serve.sessions_opened".into(), 2)]);
        let back = decode_response(&encode(&r)).unwrap();
        assert!(back.ok);
        assert_eq!(back.pending.as_deref(), Some(&[3, 1, 4][..]));
        assert_eq!(
            back.counters.unwrap()[0],
            ("serve.sessions_opened".to_string(), 2)
        );
    }

    #[test]
    fn session_names_are_path_safe() {
        assert!(valid_session_name("s-1_B"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("a/b"));
        assert!(!valid_session_name("x".repeat(65).as_str()));
        assert!(!valid_session_name("dot.dot"));
    }

    #[test]
    fn trace_id_round_trips_and_validates() {
        let mut r = Request::poll("s1");
        r.trace_id = Some("client-7/req-0042".into());
        let back = decode_request(&encode(&r)).unwrap();
        assert_eq!(back.trace_id.as_deref(), Some("client-7/req-0042"));
        assert!(valid_trace_id("client-7/req-0042"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has\nnewline"));
        assert!(!valid_trace_id(&"x".repeat(129)));
    }

    #[test]
    fn metrics_response_round_trips_text_and_windowed_fields() {
        let mut r = Response::ok();
        r.text = Some("# TYPE serve_requests counter\nserve_requests 3\n".into());
        r.gauges = Some(vec![("serve.sessions_active".into(), 4)]);
        r.sessions = Some(vec![("s1".into(), "awaiting_answers".into())]);
        r.q2b_win_count = Some(9);
        r.window_us = Some(1_000_000);
        r.uptime_us = Some(42);
        let back = decode_response(&encode(&r)).unwrap();
        assert!(back.text.unwrap().contains("serve_requests 3"));
        assert_eq!(
            back.gauges.unwrap()[0],
            ("serve.sessions_active".to_string(), 4)
        );
        assert_eq!(
            back.sessions.unwrap()[0],
            ("s1".to_string(), "awaiting_answers".to_string())
        );
        assert_eq!(back.q2b_win_count, Some(9));
        assert_eq!(back.uptime_us, Some(42));
    }
}
