//! Accept loop, connection threads, deadline sweeper, and graceful drain.
//!
//! Threading model: one nonblocking accept loop on the caller's thread,
//! one `alem_par::supervised` thread per connection (named `serve.conn`),
//! and one supervised deadline sweeper (`serve.deadline`). Connection
//! threads never touch each other's state — all shared mutation goes
//! through [`Fleet`], which is panic-isolated per session — so a
//! misbehaving connection can at worst poison the sessions it drives.
//!
//! Drain: when [`Fleet::request_drain`] fires (via the `drain` op or a
//! latched `SIGTERM`/`SIGINT` from `sigshim`), the accept loop stops
//! accepting, gives in-flight connections a bounded grace period, stops
//! the sweeper, checkpoints every live session, and returns — the binary
//! then exits 0. A `SIGKILL` skips all of that, which is exactly what the
//! crash-recovery tests exercise: the fleet restarts from the last
//! durable iteration-boundary checkpoints instead.

use crate::fleet::Fleet;
use crate::proto::{self, Response};
use alem_core::error::AlemError;
use alem_par::supervised;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where to listen.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP address, e.g. `127.0.0.1:0`.
    Tcp(String),
    /// Unix-domain socket path (removed and re-bound if it exists).
    #[cfg(unix)]
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn prepare(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(Duration::from_millis(250)))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(Duration::from_millis(250)))
            }
        }
    }

    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The serving half: owns the listener, drives the fleet.
pub struct Server {
    fleet: Arc<Fleet>,
    listener: Listener,
    addr_desc: String,
}

impl Server {
    /// Bind the listener (nonblocking accept).
    pub fn bind(bind: &Bind, fleet: Arc<Fleet>) -> Result<Server, AlemError> {
        let (listener, addr_desc) = match bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let desc = l.local_addr().map(|a| a.to_string()).unwrap_or_default();
                (Listener::Tcp(l), desc)
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), path.display().to_string())
            }
        };
        Ok(Server {
            fleet,
            listener,
            addr_desc,
        })
    }

    /// Resolved listen address (socket path, or `host:port` with the
    /// real port when bound to port 0).
    pub fn addr_desc(&self) -> &str {
        &self.addr_desc
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match &self.listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    /// Serve until a drain is requested, then drain and return. On
    /// return every live session has a durable checkpoint.
    pub fn run(&self) -> Result<(), AlemError> {
        let sweep_stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let fleet = Arc::clone(&self.fleet);
            let stop = Arc::clone(&sweep_stop);
            supervised::spawn("serve.deadline", move || {
                while !stop.load(Ordering::SeqCst) {
                    fleet.sweep_deadlines();
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
            .map_err(|e| AlemError::Io(format!("spawning deadline sweeper: {e}")))?
        };

        let active_conns = Arc::new(AtomicU64::new(0));
        loop {
            if sigshim::requested() {
                self.fleet.request_drain();
            }
            if self.fleet.draining() {
                break;
            }
            match self.accept() {
                Ok(conn) => {
                    let fleet = Arc::clone(&self.fleet);
                    let conns = Arc::clone(&active_conns);
                    conns.fetch_add(1, Ordering::SeqCst);
                    let spawned = supervised::spawn("serve.conn", move || {
                        if let Err(e) = conn_loop(&fleet, conn) {
                            // Client-side disconnects are routine; log and move on.
                            eprintln!("alem-serve: connection ended: {e}");
                        }
                        conns.fetch_sub(1, Ordering::SeqCst);
                    });
                    match spawned {
                        Ok(handle) => drop(handle), // detach; panics stay in the thread
                        Err(e) => {
                            active_conns.fetch_sub(1, Ordering::SeqCst);
                            eprintln!("alem-serve: could not spawn connection thread: {e}");
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("alem-serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }

        // Drain: bounded grace for in-flight connections (they observe the
        // draining flag at their next read timeout), then sweeper down,
        // then checkpoint everything live.
        let span = self.fleet.obs().span("serve.drain");
        for _ in 0..200 {
            if active_conns.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        sweep_stop.store(true, Ordering::SeqCst);
        if let Err(p) = sweeper.join() {
            eprintln!("alem-serve: deadline sweeper panicked: {p}");
        }
        let written = self.fleet.checkpoint_all();
        span.finish();
        // The drain dump is the service's black box for the shutdown
        // path: the final window of telemetry, written after the last
        // checkpoint so it reflects the drain itself.
        if let Some(flight) = self.fleet.flight() {
            flight.tick();
            match flight.dump_to_dir("drain") {
                Ok(Some(path)) => {
                    eprintln!("alem-serve: drain flight dump at {}", path.display())
                }
                Ok(None) => {}
                Err(e) => eprintln!("alem-serve: drain flight dump failed: {e}"),
            }
        }
        eprintln!("alem-serve: drained; {written} session checkpoint(s) written");
        Ok(())
    }
}

/// One connection: read request lines, answer each on the same
/// connection. Malformed frames get a structured `malformed` reply —
/// never a disconnect. Returns when the peer closes, a non-timeout I/O
/// error occurs, or the server starts draining.
fn conn_loop(fleet: &Fleet, conn: Conn) -> Result<(), AlemError> {
    conn.prepare()?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                // Decode before opening the request span so the span (and
                // everything under it) can be stamped with the client's
                // trace id; a fresh scope per request means an id never
                // leaks onto the next frame of the same connection.
                let decoded = proto::decode_request(&line);
                let trace_id = decoded
                    .as_ref()
                    .ok()
                    .and_then(|req| req.trace_id.clone())
                    .filter(|t| proto::valid_trace_id(t));
                let _trace = alem_obs::trace_scope(trace_id.as_deref());
                let span = fleet.obs().span("serve.request");
                let response = match decoded {
                    Ok(req) => fleet.handle(&req),
                    Err(detail) => {
                        fleet.obs().counter_add("serve.frames_rejected", 1);
                        Response::err(proto::ERR_MALFORMED, detail)
                    }
                };
                let encoded = proto::encode(&response);
                writer.write_all(encoded.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                span.finish();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick: fall out quickly once a drain begins so the
                // grace period in `run` converges.
                if fleet.draining() || sigshim::requested() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}
