//! State-directory persistence for the fleet.
//!
//! Each session owns three files under the state dir, all keyed by its
//! (path-safe, see [`crate::proto::valid_session_name`]) name:
//!
//! - `<name>.meta.json` — the immutable open-time spec (dataset, seed,
//!   strategy, params, corpus fingerprint), written once at `open`. This
//!   is what a cold restart needs to rebuild the machine *before* it can
//!   even read a checkpoint.
//! - `<name>.ckpt.json` — the latest iteration-boundary [`Checkpoint`],
//!   written atomically (tmp + rename) by [`Checkpoint::save`].
//! - `<name>.done.json` — the terminal record (fingerprint, stats) once
//!   the session completes, so a restart reports finished sessions
//!   without replaying them.
//!
//! The `chaos_die_at_checkpoint` hook simulates the worst-timed kill: on
//! the N-th checkpoint write the process leaves a *truncated* `.tmp`
//! sibling behind and aborts before the rename. [`Checkpoint::load`]
//! removes the stale sibling on the next start, falling back to the last
//! durable snapshot — the crash-recovery tests assert the resumed run is
//! still byte-identical.

use crate::proto;
use alem_core::error::AlemError;
use alem_core::session::Checkpoint;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Immutable per-session spec persisted at `open`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMeta {
    /// Session name (redundant with the file name; kept for diagnostics).
    pub session: String,
    /// Dataset spec for [`crate::dataset::build`].
    pub dataset: String,
    /// Master seed.
    pub seed: u64,
    /// Strategy name for [`crate::fleet::build_strategy`].
    pub strategy: String,
    /// Seed draw size.
    pub seed_size: usize,
    /// Labels per iteration.
    pub batch_size: usize,
    /// Total label budget.
    pub max_labels: usize,
    /// Early-stop F1 target.
    pub stop_at_f1: Option<f64>,
    /// `Corpus::content_fingerprint` of the built corpus, as hex — a
    /// restart rejects the session if the rebuilt corpus drifts.
    pub corpus_fingerprint: String,
}

/// Terminal record persisted when a session completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneRecord {
    /// Session name.
    pub session: String,
    /// `RunResult::deterministic_fingerprint`.
    pub fingerprint: String,
    /// Iterations recorded.
    pub iterations: usize,
    /// Labels consumed.
    pub labels_used: usize,
    /// Best F1 reached.
    pub best_f1: f64,
}

/// Filesystem facade for one state directory.
pub struct Store {
    dir: PathBuf,
    ckpt_writes: AtomicU64,
    chaos_die_at: Option<u64>,
}

impl Store {
    /// Open (creating if needed) the state directory. `chaos_die_at`
    /// arms the die-mid-checkpoint-write fault injection.
    pub fn open(dir: &Path, chaos_die_at: Option<u64>) -> Result<Self, AlemError> {
        std::fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            ckpt_writes: AtomicU64::new(0),
            chaos_die_at,
        })
    }

    fn path(&self, name: &str, kind: &str) -> PathBuf {
        self.dir.join(format!("{name}.{kind}.json"))
    }

    /// Path of the session's checkpoint file.
    pub fn checkpoint_path(&self, name: &str) -> PathBuf {
        self.path(name, "ckpt")
    }

    /// Persist the open-time spec.
    pub fn save_meta(&self, meta: &SessionMeta) -> Result<(), AlemError> {
        let json = serde_json::to_string(meta)
            .map_err(|e| AlemError::Io(format!("serializing meta: {e}")))?;
        std::fs::write(self.path(&meta.session, "meta"), json)?;
        Ok(())
    }

    /// Load the open-time spec for `name`.
    pub fn load_meta(&self, name: &str) -> Result<SessionMeta, AlemError> {
        let text = std::fs::read_to_string(self.path(name, "meta"))?;
        serde_json::from_str(&text)
            .map_err(|e| AlemError::CheckpointCorrupt(format!("meta for '{name}': {e}")))
    }

    /// Persist the terminal record.
    pub fn save_done(&self, done: &DoneRecord) -> Result<(), AlemError> {
        let json = serde_json::to_string(done)
            .map_err(|e| AlemError::Io(format!("serializing done record: {e}")))?;
        std::fs::write(self.path(&done.session, "done"), json)?;
        Ok(())
    }

    /// Load the terminal record for `name`, if the session finished.
    pub fn load_done(&self, name: &str) -> Option<DoneRecord> {
        let text = std::fs::read_to_string(self.path(name, "done")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Whether a checkpoint exists for `name`.
    pub fn has_checkpoint(&self, name: &str) -> bool {
        self.checkpoint_path(name).exists()
    }

    /// Write `ckpt` atomically — unless the chaos counter says this is the
    /// write to die on, in which case a truncated `.tmp` sibling is left
    /// behind and the process aborts (simulating a kill between
    /// `Checkpoint::save`'s write and rename).
    pub fn save_checkpoint(&self, name: &str, ckpt: &Checkpoint) -> Result<(), AlemError> {
        let n = self.ckpt_writes.fetch_add(1, Ordering::SeqCst) + 1;
        let path = self.checkpoint_path(name);
        if self.chaos_die_at == Some(n) {
            let json = serde_json::to_string(ckpt)
                .map_err(|e| AlemError::Io(format!("serializing checkpoint: {e}")))?;
            let half = &json[..json.len() / 2];
            std::fs::write(path.with_extension("tmp"), half)?;
            eprintln!("alem-serve: chaos_die_at_checkpoint={n} firing: aborting mid-write");
            std::process::abort();
        }
        ckpt.save(&path)
    }

    /// Load the checkpoint for `name` (removing any stale `.tmp` sibling).
    pub fn load_checkpoint(&self, name: &str) -> Result<Checkpoint, AlemError> {
        Checkpoint::load(&self.checkpoint_path(name))
    }

    /// Session names present in the state dir (from `*.meta.json`),
    /// sorted for deterministic restore order.
    pub fn list_sessions(&self) -> Result<Vec<String>, AlemError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            if let Some(name) = file.strip_suffix(".meta.json") {
                if proto::valid_session_name(name) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Checkpoint writes performed so far (diagnostics).
    pub fn checkpoint_writes(&self) -> u64 {
        self.ckpt_writes.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::loop_::LoopParams;
    use alem_core::session::CHECKPOINT_VERSION;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alem-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(name: &str) -> SessionMeta {
        SessionMeta {
            session: name.to_string(),
            dataset: "toy".into(),
            seed: 7,
            strategy: "margin".into(),
            seed_size: 12,
            batch_size: 8,
            max_labels: 80,
            stop_at_f1: None,
            corpus_fingerprint: "00ff00ff00ff00ff".into(),
        }
    }

    #[test]
    fn meta_and_done_round_trip() {
        let store = Store::open(&tmp_dir("meta"), None).unwrap();
        store.save_meta(&meta("a")).unwrap();
        store.save_meta(&meta("b")).unwrap();
        assert_eq!(store.load_meta("a").unwrap(), meta("a"));
        assert_eq!(store.list_sessions().unwrap(), vec!["a", "b"]);
        assert!(store.load_done("a").is_none());
        let done = DoneRecord {
            session: "a".into(),
            fingerprint: "deadbeef".into(),
            iterations: 9,
            labels_used: 76,
            best_f1: 0.5,
        };
        store.save_done(&done).unwrap();
        assert_eq!(store.load_done("a").unwrap(), done);
    }

    #[test]
    fn checkpoints_round_trip_through_store() {
        let store = Store::open(&tmp_dir("ckpt"), None).unwrap();
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 3,
            iter_no: 2,
            stalled: 0,
            labeled: vec![(0, true)],
            unlabeled: vec![1, 2],
            eval_idx: vec![0, 1, 2],
            iterations: vec![],
            oracle_queries: 1,
            params: LoopParams::default(),
            strategy: "margin".into(),
            dataset: "toy".into(),
            corpus_len: 3,
            corpus_fingerprint: 0xabcd,
            warm: None,
        };
        assert!(!store.has_checkpoint("s"));
        store.save_checkpoint("s", &ckpt).unwrap();
        assert!(store.has_checkpoint("s"));
        assert_eq!(store.load_checkpoint("s").unwrap(), ckpt);
        assert_eq!(store.checkpoint_writes(), 1);
    }
}
