//! Shared scaffolding for the serve integration tests: spawn a real
//! `alem-serve` process, talk to it over the wire, drive sessions with
//! ground-truth answers.
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it.
#![allow(dead_code)]

use alem_core::oracle::OracleAnswer;
use alem_serve::client::Client;
use alem_serve::dataset;
use alem_serve::proto::Request;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub struct TestServer {
    pub child: Child,
    pub addr: String,
    pub state_dir: PathBuf,
}

impl TestServer {
    /// Spawn a server over a fresh state dir. `tag` must be unique per
    /// test; `reuse_state` restarts over an existing dir (recovery tests).
    pub fn spawn(tag: &str, extra_args: &[&str], reuse_state: Option<PathBuf>) -> TestServer {
        let state_dir = reuse_state.unwrap_or_else(|| {
            let dir =
                std::env::temp_dir().join(format!("alem-serve-it-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        });
        let addr = listen_addr(tag);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_alem-serve"));
        if addr.contains('/') {
            cmd.arg("--socket").arg(&addr);
        } else {
            cmd.arg("--tcp").arg(&addr);
        }
        cmd.arg("--state-dir").arg(&state_dir);
        cmd.args(extra_args);
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn alem-serve");
        wait_listening(&mut child);
        TestServer {
            child,
            addr,
            state_dir,
        }
    }

    pub fn client(&self) -> Client {
        let t = Instant::now();
        loop {
            match Client::connect(&self.addr) {
                Ok(c) => return c,
                Err(e) => {
                    assert!(t.elapsed() < Duration::from_secs(10), "cannot connect: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Request a graceful drain and assert the process exits 0.
    pub fn drain(mut self) -> PathBuf {
        let mut c = self.client();
        let r = c.call(&Request::new("drain")).expect("drain call");
        assert!(r.ok);
        let status = wait_exit(&mut self.child, Duration::from_secs(30)).expect("drain exit");
        assert!(status.success(), "drain exit was {status}");
        self.state_dir.clone()
    }

    /// SIGKILL the server (no drain, no checkpoint-all).
    pub fn kill(mut self) -> PathBuf {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
        self.state_dir.clone()
    }

    /// Wait for the process to exit on its own (chaos aborts).
    pub fn wait_death(mut self, max: Duration) -> PathBuf {
        let status = wait_exit(&mut self.child, max).expect("server did not die");
        assert!(!status.success(), "expected abnormal exit, got {status}");
        self.state_dir.clone()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn wait_exit(child: &mut Child, max: Duration) -> Option<std::process::ExitStatus> {
    let t = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) if t.elapsed() < max => std::thread::sleep(Duration::from_millis(20)),
            _ => return None,
        }
    }
}

fn wait_listening(child: &mut Child) {
    use std::io::{BufRead, BufReader, Read};
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read stdout");
        assert!(n > 0, "server exited before listening");
        if line.contains("listening on") {
            break;
        }
    }
    let drainer = alem_par::supervised::spawn("test.stdout", move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    if let Ok(handle) = drainer {
        drop(handle); // detach
    }
}

#[cfg(unix)]
fn listen_addr(tag: &str) -> String {
    format!("/tmp/alem-it-{}-{tag}.sock", std::process::id())
}

#[cfg(not(unix))]
fn listen_addr(tag: &str) -> String {
    let h = tag
        .bytes()
        .fold(0u32, |a, b| a.wrapping_mul(31).wrapping_add(b as u32));
    format!("127.0.0.1:{}", 18000 + (std::process::id() + h) % 10_000)
}

/// Answer pending queries with ground truth until the session finishes;
/// returns its fingerprint. Panics if the session fails or stalls.
pub fn drive_to_done(client: &mut Client, session: &str, dataset_spec: &str, seed: u64) -> String {
    let corpus = dataset::build(dataset_spec).expect("dataset");
    let key = alem_core::oracle::AnswerKey::perfect(seed);
    let t = Instant::now();
    loop {
        assert!(
            t.elapsed() < Duration::from_secs(120),
            "session '{session}' did not finish"
        );
        let r = client.call(&Request::poll(session)).expect("poll");
        assert!(r.ok, "poll failed: {:?} {:?}", r.error, r.detail);
        match r.state.as_deref() {
            Some("done") => return r.fingerprint.expect("fingerprint"),
            Some("failed") => panic!("session '{session}' failed: {:?}", r.detail),
            Some("awaiting_answers") => {
                for example in r.pending.unwrap_or_default() {
                    let req = match key.answer(example, corpus.truth(example)) {
                        OracleAnswer::Label(l) => Request::answer(session, example, l),
                        OracleAnswer::Abstain => Request::abstain(session, example),
                    };
                    let ar = client.call(&req).expect("answer");
                    assert!(ar.ok, "answer rejected: {:?}", ar.error);
                }
            }
            other => panic!("unexpected state {other:?}"),
        }
    }
}

/// The fault-free in-process fingerprint for (spec, seed) under the
/// default service params and the `margin` strategy.
pub fn reference(spec: &str, seed: u64) -> String {
    dataset::reference_fingerprint(
        spec,
        seed,
        alem_serve::fleet::build_strategy("margin").expect("strategy"),
        &dataset::default_params(),
    )
    .expect("reference run")
}

/// Drive the session partway: deliver answers until at least
/// `min_answers` have been sent, then return (leaving the wave wherever
/// it happens to be — possibly mid-wave).
pub fn drive_partial(
    client: &mut Client,
    session: &str,
    dataset_spec: &str,
    seed: u64,
    min_answers: usize,
) {
    let corpus = dataset::build(dataset_spec).expect("dataset");
    let key = alem_core::oracle::AnswerKey::perfect(seed);
    let mut sent = 0;
    let t = Instant::now();
    while sent < min_answers {
        assert!(t.elapsed() < Duration::from_secs(60), "partial drive stuck");
        let r = client.call(&Request::poll(session)).expect("poll");
        assert!(r.ok);
        match r.state.as_deref() {
            Some("awaiting_answers") => {
                for example in r.pending.unwrap_or_default() {
                    let req = match key.answer(example, corpus.truth(example)) {
                        OracleAnswer::Label(l) => Request::answer(session, example, l),
                        OracleAnswer::Abstain => Request::abstain(session, example),
                    };
                    assert!(client.call(&req).expect("answer").ok);
                    sent += 1;
                    if sent >= min_answers {
                        return;
                    }
                }
            }
            other => panic!("session ended early in partial drive: {other:?}"),
        }
    }
}
