//! Crash-recovery integration tests: kill a real server mid-run (three
//! different ways), restart it over the same state dir, and assert every
//! resumed session finishes byte-identical to a fault-free run.

mod common;

use alem_serve::proto::Request;
use common::{drive_partial, drive_to_done, reference, TestServer};

/// SIGKILL mid-iteration (answers in flight, no drain, no checkpoint-all),
/// then a cold restart must resume from the last boundary checkpoint and
/// reproduce the reference fingerprint exactly.
#[test]
fn sigkill_mid_iteration_then_restart_resumes_byte_identical() {
    let args = ["--checkpoint-every", "1"];
    let server = TestServer::spawn("cr-kill", &args, None);
    let mut c = server.client();
    assert!(c.call(&Request::open("a", "toy", 21, "margin")).unwrap().ok);
    assert!(
        c.call(&Request::open("b", "skew", 22, "margin"))
            .unwrap()
            .ok
    );
    // Push both sessions past at least one checkpoint boundary, leaving
    // them mid-wave.
    drive_partial(&mut c, "a", "toy", 21, 30);
    drive_partial(&mut c, "b", "skew", 22, 25);
    let state_dir = server.kill();

    let server2 = TestServer::spawn("cr-kill2", &args, Some(state_dir));
    let mut c = server2.client();
    let ra = c.call(&Request::poll("a")).unwrap();
    assert!(ra.ok, "{:?}", ra.detail);
    assert_eq!(ra.resumed, Some(true));
    assert_eq!(drive_to_done(&mut c, "a", "toy", 21), reference("toy", 21));
    assert_eq!(
        drive_to_done(&mut c, "b", "skew", 22),
        reference("skew", 22)
    );
    server2.drain();
}

/// Abort *during* a checkpoint write (truncated `.tmp` left behind, no
/// rename). Restart must discard the stale temp file, resume from the
/// previous durable snapshot, and still converge to the reference.
#[test]
fn abort_mid_checkpoint_write_leaves_recoverable_state() {
    let args = ["--checkpoint-every", "1", "--chaos-die-at-checkpoint", "3"];
    let server = TestServer::spawn("cr-abort", &args, None);
    let mut c = server.client();
    assert!(c.call(&Request::open("a", "toy", 31, "margin")).unwrap().ok);
    // Answer until the chaos hook aborts the process mid-write: client
    // calls start failing once the server is gone.
    let corpus = alem_serve::dataset::build("toy").unwrap();
    let key = alem_core::oracle::AnswerKey::perfect(31);
    'outer: loop {
        let Ok(r) = c.call(&Request::poll("a")) else {
            break 'outer; // server died as planned
        };
        match r.state.as_deref() {
            Some("awaiting_answers") => {
                for example in r.pending.unwrap_or_default() {
                    let req = match key.answer(example, corpus.truth(example)) {
                        alem_core::oracle::OracleAnswer::Label(l) => {
                            Request::answer("a", example, l)
                        }
                        alem_core::oracle::OracleAnswer::Abstain => Request::abstain("a", example),
                    };
                    if c.call(&req).is_err() {
                        break 'outer;
                    }
                }
            }
            other => panic!("session ended before the abort: {other:?}"),
        }
    }
    let state_dir = server.wait_death(std::time::Duration::from_secs(60));
    // The interrupted write left a stale temp sibling.
    let stale: Vec<_> = std::fs::read_dir(&state_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(!stale.is_empty(), "expected a truncated .tmp checkpoint");

    let server2 = TestServer::spawn("cr-abort2", &["--checkpoint-every", "1"], Some(state_dir));
    let mut c = server2.client();
    assert_eq!(drive_to_done(&mut c, "a", "toy", 31), reference("toy", 31));
    let state_dir = server2.drain();
    // The stale temp file was cleaned up during resume.
    let stale: Vec<_> = std::fs::read_dir(&state_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(stale.is_empty(), "stale .tmp survived recovery: {stale:?}");
}

/// Graceful drain (the `drain` op = SIGTERM semantics) checkpoints every
/// live session — including ones never pushed past a boundary — and a
/// restart finishes them all byte-identically.
#[test]
fn graceful_drain_then_restart_finishes_all_sessions() {
    let server = TestServer::spawn("cr-drain", &[], None);
    let mut c = server.client();
    assert!(c.call(&Request::open("a", "toy", 51, "margin")).unwrap().ok);
    assert!(c.call(&Request::open("b", "toy", 52, "margin")).unwrap().ok);
    assert!(
        c.call(&Request::open("c", "skew", 53, "margin"))
            .unwrap()
            .ok
    );
    // One finished, one mid-run, one untouched (still in its seed wave).
    let done_before = drive_to_done(&mut c, "a", "toy", 51);
    drive_partial(&mut c, "b", "toy", 52, 30);
    drop(c);
    let state_dir = server.drain();

    let server2 = TestServer::spawn("cr-drain2", &[], Some(state_dir));
    let mut c = server2.client();
    // The finished session is reported from its durable done record.
    let ra = c.call(&Request::poll("a")).unwrap();
    assert_eq!(ra.state.as_deref(), Some("done"));
    assert_eq!(ra.fingerprint.as_deref(), Some(done_before.as_str()));
    assert_eq!(done_before, reference("toy", 51));
    // The others resume and land on their references.
    assert_eq!(drive_to_done(&mut c, "b", "toy", 52), reference("toy", 52));
    assert_eq!(
        drive_to_done(&mut c, "c", "skew", 53),
        reference("skew", 53)
    );
    let status = c.call(&Request::new("status")).unwrap();
    assert_eq!(status.done, Some(3));
    assert_eq!(status.failed, Some(0));
    server2.drain();
}
