//! Wire-protocol integration tests against a real `alem-serve` process.

mod common;

use alem_serve::proto::{self, Request};
use common::{drive_to_done, reference, TestServer};

#[test]
fn session_over_the_wire_matches_in_process_reference() {
    let server = TestServer::spawn("wire-basic", &[], None);
    let mut c = server.client();
    let r = c.call(&Request::open("s1", "toy", 41, "margin")).unwrap();
    assert!(r.ok, "{:?} {:?}", r.error, r.detail);
    assert_eq!(r.state.as_deref(), Some("awaiting_answers"));
    assert!(!r.pending.unwrap().is_empty());
    let fp = drive_to_done(&mut c, "s1", "toy", 41);
    assert_eq!(fp, reference("toy", 41));
    server.drain();
}

#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    let server = TestServer::spawn("wire-malformed", &[], None);
    let mut c = server.client();
    for garbage in ["{\"op\": tru", "[1,2,3]", "not json at all", "{}"] {
        let r = c.send_raw(garbage).unwrap();
        assert!(!r.ok, "garbage accepted: {garbage}");
        assert_eq!(r.error.as_deref(), Some(proto::ERR_MALFORMED), "{garbage}");
        assert!(r.detail.is_some());
    }
    // Same connection still works for real traffic.
    let r = c.call(&Request::new("status")).unwrap();
    assert!(r.ok);
    assert_eq!(r.active, Some(0));

    // Well-formed but invalid requests get their own codes.
    let r = c.call(&Request::poll("never-opened")).unwrap();
    assert_eq!(r.error.as_deref(), Some(proto::ERR_UNKNOWN_SESSION));
    let r = c
        .call(&Request::open("bad/name", "toy", 1, "margin"))
        .unwrap();
    assert_eq!(r.error.as_deref(), Some(proto::ERR_INVALID));
    let r = c
        .call(&Request::open("s1", "toy", 1, "no-such-strategy"))
        .unwrap();
    assert_eq!(r.error.as_deref(), Some(proto::ERR_INVALID));
    let r = c.call(&Request::new("frobnicate")).unwrap();
    assert_eq!(r.error.as_deref(), Some(proto::ERR_INVALID));
    server.drain();
}

#[test]
fn backpressure_rejects_with_retry_hint_at_capacity() {
    let server = TestServer::spawn("wire-busy", &["--max-sessions", "1"], None);
    let mut c = server.client();
    assert!(
        c.call(&Request::open("only", "toy", 1, "margin"))
            .unwrap()
            .ok
    );
    let r = c.call(&Request::open("extra", "toy", 2, "margin")).unwrap();
    assert!(!r.ok);
    assert_eq!(r.error.as_deref(), Some(proto::ERR_BUSY));
    assert!(r.retry_after_ms.unwrap() > 0);
    // Capacity frees once the only session completes.
    drive_to_done(&mut c, "only", "toy", 1);
    let r = c.call(&Request::open("extra", "toy", 2, "margin")).unwrap();
    assert!(r.ok, "{:?} {:?}", r.error, r.detail);
    server.drain();
}

#[test]
fn crash_op_poisons_one_session_and_the_fleet_keeps_serving() {
    let server = TestServer::spawn("wire-crash", &[], None);
    let mut c = server.client();
    assert!(
        c.call(&Request::open("victim", "toy", 9, "margin"))
            .unwrap()
            .ok
    );
    assert!(
        c.call(&Request::open("bystander", "skew", 10, "margin"))
            .unwrap()
            .ok
    );
    let mut crash = Request::new("crash");
    crash.session = Some("victim".to_string());
    let r = c.call(&crash).unwrap();
    assert_eq!(r.state.as_deref(), Some("failed"));
    assert!(r.detail.unwrap().contains("panic"));
    // Same connection, different session: unaffected.
    let fp = drive_to_done(&mut c, "bystander", "skew", 10);
    assert_eq!(fp, reference("skew", 10));
    let status = c.call(&Request::new("status")).unwrap();
    assert_eq!(status.failed, Some(1));
    assert_eq!(status.done, Some(1));
    server.drain();
}

#[test]
fn metrics_op_reports_counters_and_latency_quantiles() {
    let server = TestServer::spawn("wire-metrics", &[], None);
    let mut c = server.client();
    assert!(c.call(&Request::open("s1", "toy", 3, "margin")).unwrap().ok);
    drive_to_done(&mut c, "s1", "toy", 3);
    let m = c.call(&Request::new("metrics")).unwrap();
    let counters = m.counters.unwrap();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(get("serve.sessions_opened"), 1);
    assert_eq!(get("serve.sessions_completed"), 1);
    assert!(get("serve.answers_applied") > 0);
    assert!(
        m.q2b_count.unwrap_or(0) > 0,
        "query_to_batch spans recorded"
    );
    assert!(m.q2b_p99_us.unwrap_or(0) >= m.q2b_p50_us.unwrap_or(0));

    // The Prometheus text exposition rides along and covers the full
    // counter catalog (zero-filled where nothing incremented yet).
    let text = m.text.expect("text exposition");
    for family in alem_serve::fleet::FLEET_COUNTERS {
        let sanitized = family.replace('.', "_");
        assert!(
            text.contains(&format!("# TYPE {sanitized} counter")),
            "exposition missing {family}:\n{text}"
        );
    }
    assert!(text.contains("serve_query_to_batch{quantile=\"0.99\"}"));
    server.drain();
}

#[test]
fn healthz_and_trace_ids_over_the_wire() {
    let server = TestServer::spawn("wire-admin", &[], None);
    let mut c = server.client();

    let h = c.call(&Request::new("healthz")).unwrap();
    assert!(h.ok);
    assert_eq!(h.active, Some(0));
    assert_eq!(h.draining, Some(false));
    assert!(h.uptime_us.unwrap_or(0) > 0);

    // A connection-level trace id is stamped onto every frame and echoed
    // back by the server.
    c.set_trace_id(Some("it-trace-1"));
    let r = c.call(&Request::open("t1", "toy", 5, "margin")).unwrap();
    assert!(r.ok, "{:?} {:?}", r.error, r.detail);
    assert_eq!(r.trace_id.as_deref(), Some("it-trace-1"));
    let fp = drive_to_done(&mut c, "t1", "toy", 5);
    assert_eq!(fp, reference("toy", 5), "trace ids must not perturb runs");

    // Invalid ids are rejected before dispatch.
    let mut bad = Request::poll("t1");
    bad.trace_id = Some("bad\u{7f}id".to_string());
    let r = c.send_raw(&proto::encode(&bad)).unwrap();
    assert_eq!(r.error.as_deref(), Some(proto::ERR_INVALID));
    server.drain();
}
