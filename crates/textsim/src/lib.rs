//! `textsim` — string similarity functions for entity matching.
//!
//! This crate replaces the Java Simmetrics library used by the SIGMOD 2020
//! paper *"A Comprehensive Benchmark Framework for Active Learning Methods in
//! Entity Matching"* (Meduri et al.). It implements the same 21 similarity
//! functions the paper's feature extractor applies to every pair of aligned
//! attributes, all normalized to `[0, 1]`.
//!
//! The central entry points are [`SimilarityFunction`], an enum covering all
//! 21 measures, and [`Prepared`], a pre-tokenized view of a string that lets
//! callers amortize tokenization when evaluating many measures against the
//! same value (exactly what a feature extractor does).
//!
//! Per the paper (§3), if one or both attribute values are null/missing the
//! similarity evaluates to `0`; the empty string is treated as missing.
//!
//! # Example
//!
//! ```
//! use textsim::{Prepared, SimilarityFunction};
//!
//! let a = Prepared::new("apple ipod nano 8gb");
//! let b = Prepared::new("apple ipod nano 8 gb silver");
//! let jac = SimilarityFunction::Jaccard.compute_prepared(&a, &b);
//! assert!(jac > 0.4 && jac < 1.0);
//! let exact = SimilarityFunction::Identity.compute_prepared(&a, &a);
//! assert_eq!(exact, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod phonetic;
pub mod prepared;
pub mod qgram;
pub mod seq;
pub mod setsim;
pub mod tokenize;

pub use prepared::Prepared;

/// One of the 21 string similarity measures from the Simmetrics suite used by
/// the paper's feature extractor.
///
/// Every measure is normalized to `[0, 1]` where `1` means identical and `0`
/// means maximally dissimilar (or missing input). Distance-like measures
/// (Levenshtein, q-gram distance, block distance, Euclidean distance) are
/// converted to similarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimilarityFunction {
    /// Normalized Levenshtein (edit distance) similarity on characters.
    Levenshtein,
    /// Normalized Damerau-Levenshtein similarity (edits + transpositions).
    DamerauLevenshtein,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (prefix-boosted Jaro, p = 0.1, max prefix 4).
    JaroWinkler,
    /// Normalized Needleman-Wunsch global alignment similarity.
    NeedlemanWunsch,
    /// Normalized Smith-Waterman local alignment similarity.
    SmithWaterman,
    /// Normalized Smith-Waterman-Gotoh (affine gap penalties).
    SmithWatermanGotoh,
    /// Longest common subsequence similarity, `|lcs| / max(|a|, |b|)`.
    LongestCommonSubsequence,
    /// Longest common substring similarity, `|lcsstr| / max(|a|, |b|)`.
    LongestCommonSubstring,
    /// Exact string equality (1.0 or 0.0).
    Identity,
    /// Jaccard coefficient on whitespace token sets.
    Jaccard,
    /// Generalized Jaccard: soft token overlap with Jaro inner similarity.
    GeneralizedJaccard,
    /// Sørensen-Dice coefficient on whitespace token sets.
    Dice,
    /// Overlap coefficient on whitespace token sets.
    OverlapCoefficient,
    /// Cosine similarity on whitespace token sets.
    Cosine,
    /// Simon White similarity: Dice coefficient on bigram multisets.
    SimonWhite,
    /// Ukkonen q-gram distance (q = 3, padded), converted to a similarity.
    QGram,
    /// Block (L1) distance on token multisets, converted to a similarity.
    BlockDistance,
    /// Euclidean (L2) distance on token multisets, converted to a similarity.
    EuclideanDistance,
    /// Monge-Elkan: average best-match token similarity with a
    /// Smith-Waterman inner measure.
    MongeElkan,
    /// Soundex: Jaro-Winkler over the Soundex codes of the first tokens.
    Soundex,
}

impl SimilarityFunction {
    /// All 21 similarity functions in a stable, documented order. The
    /// feature extractor iterates this array, so feature indices are
    /// reproducible across runs.
    pub const ALL: [SimilarityFunction; 21] = [
        SimilarityFunction::Levenshtein,
        SimilarityFunction::DamerauLevenshtein,
        SimilarityFunction::Jaro,
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::NeedlemanWunsch,
        SimilarityFunction::SmithWaterman,
        SimilarityFunction::SmithWatermanGotoh,
        SimilarityFunction::LongestCommonSubsequence,
        SimilarityFunction::LongestCommonSubstring,
        SimilarityFunction::Identity,
        SimilarityFunction::Jaccard,
        SimilarityFunction::GeneralizedJaccard,
        SimilarityFunction::Dice,
        SimilarityFunction::OverlapCoefficient,
        SimilarityFunction::Cosine,
        SimilarityFunction::SimonWhite,
        SimilarityFunction::QGram,
        SimilarityFunction::BlockDistance,
        SimilarityFunction::EuclideanDistance,
        SimilarityFunction::MongeElkan,
        SimilarityFunction::Soundex,
    ];

    /// The subset of similarity functions supported by the rule-based learner
    /// of Qian et al. (paper §3: equality, Jaro-Winkler and Jaccard).
    pub const RULE_SUBSET: [SimilarityFunction; 3] = [
        SimilarityFunction::Identity,
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::Jaccard,
    ];

    /// Short stable name used in feature descriptions and learned-rule
    /// pretty-printing (e.g. `JaccardSim(left.name, right.name) >= 0.4`).
    pub fn name(self) -> &'static str {
        match self {
            SimilarityFunction::Levenshtein => "LevenshteinSim",
            SimilarityFunction::DamerauLevenshtein => "DamerauLevenshteinSim",
            SimilarityFunction::Jaro => "JaroSim",
            SimilarityFunction::JaroWinkler => "JaroWinklerSim",
            SimilarityFunction::NeedlemanWunsch => "NeedlemanWunschSim",
            SimilarityFunction::SmithWaterman => "SmithWatermanSim",
            SimilarityFunction::SmithWatermanGotoh => "SmithWatermanGotohSim",
            SimilarityFunction::LongestCommonSubsequence => "LcsSeqSim",
            SimilarityFunction::LongestCommonSubstring => "LcsStrSim",
            SimilarityFunction::Identity => "ExactMatch",
            SimilarityFunction::Jaccard => "JaccardSim",
            SimilarityFunction::GeneralizedJaccard => "GeneralizedJaccardSim",
            SimilarityFunction::Dice => "DiceSim",
            SimilarityFunction::OverlapCoefficient => "OverlapSim",
            SimilarityFunction::Cosine => "CosineSim",
            SimilarityFunction::SimonWhite => "SimonWhiteSim",
            SimilarityFunction::QGram => "QGramSim",
            SimilarityFunction::BlockDistance => "BlockDistSim",
            SimilarityFunction::EuclideanDistance => "EuclideanSim",
            SimilarityFunction::MongeElkan => "MongeElkanSim",
            SimilarityFunction::Soundex => "SoundexSim",
        }
    }

    /// Compute the similarity of two raw strings.
    ///
    /// Prefer [`SimilarityFunction::compute_prepared`] when evaluating many
    /// measures over the same values; this convenience method tokenizes on
    /// every call.
    pub fn compute(self, a: &str, b: &str) -> f64 {
        self.compute_prepared(&Prepared::new(a), &Prepared::new(b))
    }

    /// Compute the similarity of two pre-tokenized strings.
    ///
    /// Returns `0.0` if either side is missing (empty after trimming), per
    /// the paper's null-handling rule.
    pub fn compute_prepared(self, a: &Prepared, b: &Prepared) -> f64 {
        if a.is_missing() || b.is_missing() {
            return 0.0;
        }
        let s = match self {
            SimilarityFunction::Levenshtein => seq::levenshtein_sim(a.chars(), b.chars()),
            SimilarityFunction::DamerauLevenshtein => {
                seq::damerau_levenshtein_sim(a.chars(), b.chars())
            }
            SimilarityFunction::Jaro => seq::jaro(a.chars(), b.chars()),
            SimilarityFunction::JaroWinkler => seq::jaro_winkler(a.chars(), b.chars()),
            SimilarityFunction::NeedlemanWunsch => seq::needleman_wunsch_sim(a.chars(), b.chars()),
            SimilarityFunction::SmithWaterman => seq::smith_waterman_sim(a.chars(), b.chars()),
            SimilarityFunction::SmithWatermanGotoh => {
                seq::smith_waterman_gotoh_sim(a.chars(), b.chars())
            }
            SimilarityFunction::LongestCommonSubsequence => seq::lcs_seq_sim(a.chars(), b.chars()),
            SimilarityFunction::LongestCommonSubstring => seq::lcs_str_sim(a.chars(), b.chars()),
            SimilarityFunction::Identity => {
                if a.normalized() == b.normalized() {
                    1.0
                } else {
                    0.0
                }
            }
            SimilarityFunction::Jaccard => setsim::jaccard(a.token_set(), b.token_set()),
            SimilarityFunction::GeneralizedJaccard => {
                setsim::generalized_jaccard(a.tokens(), b.tokens())
            }
            SimilarityFunction::Dice => setsim::dice(a.token_set(), b.token_set()),
            SimilarityFunction::OverlapCoefficient => setsim::overlap(a.token_set(), b.token_set()),
            SimilarityFunction::Cosine => setsim::cosine(a.token_set(), b.token_set()),
            SimilarityFunction::SimonWhite => qgram::simon_white(a.bigrams(), b.bigrams()),
            SimilarityFunction::QGram => qgram::qgram_sim(a.trigrams(), b.trigrams()),
            SimilarityFunction::BlockDistance => {
                setsim::block_distance_sim(a.token_counts(), b.token_counts())
            }
            SimilarityFunction::EuclideanDistance => {
                setsim::euclidean_sim(a.token_counts(), b.token_counts())
            }
            SimilarityFunction::MongeElkan => setsim::monge_elkan(a.tokens(), b.tokens()),
            SimilarityFunction::Soundex => phonetic::soundex_sim(a.tokens(), b.tokens()),
        };
        // Guard against float drift: all measures are defined on [0, 1].
        s.clamp(0.0, 1.0)
    }
}

/// Similarity between two optional numeric values: `1 - |a-b| / max(|a|,|b|)`.
///
/// Used for numeric attributes like `price` where string measures are
/// uninformative. Missing values give `0` per the paper's null rule.
pub fn numeric_sim(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => {
            if x == y {
                return 1.0;
            }
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                1.0
            } else {
                (1.0 - (x - y).abs() / denom).max(0.0)
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_21_functions() {
        assert_eq!(SimilarityFunction::ALL.len(), 21);
        let mut v = SimilarityFunction::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 21);
    }

    #[test]
    fn missing_values_score_zero() {
        for f in SimilarityFunction::ALL {
            assert_eq!(f.compute("", "anything"), 0.0, "{:?}", f);
            assert_eq!(f.compute("anything", ""), 0.0, "{:?}", f);
            assert_eq!(f.compute("   ", "anything"), 0.0, "{:?}", f);
        }
    }

    #[test]
    fn identical_strings_score_one() {
        for f in SimilarityFunction::ALL {
            let s = f.compute("apple ipod nano", "apple ipod nano");
            assert!((s - 1.0).abs() < 1e-12, "{:?} gave {}", f, s);
        }
    }

    #[test]
    fn rule_subset_is_three() {
        assert_eq!(SimilarityFunction::RULE_SUBSET.len(), 3);
    }

    #[test]
    fn numeric_sim_basics() {
        assert_eq!(numeric_sim(None, Some(1.0)), 0.0);
        assert_eq!(numeric_sim(Some(5.0), Some(5.0)), 1.0);
        assert_eq!(numeric_sim(Some(0.0), Some(0.0)), 1.0);
        let s = numeric_sim(Some(10.0), Some(9.0));
        assert!((s - 0.9).abs() < 1e-12);
        assert_eq!(numeric_sim(Some(10.0), Some(-10.0)), 0.0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SimilarityFunction::ALL.iter().map(|f| f.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 21);
    }
}
