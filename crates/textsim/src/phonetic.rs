//! Phonetic similarity: Soundex encoding compared with Jaro-Winkler.
//!
//! Simmetrics' Soundex metric encodes both inputs with the classic American
//! Soundex algorithm and compares the codes with Jaro-Winkler. We encode the
//! first token of each value (Soundex is a single-word code) and fall back to
//! plain Jaro-Winkler on the raw strings when neither side starts with an
//! alphabetic token.

use crate::seq;

/// Classic 4-character American Soundex code (`None` when the input has no
/// leading alphabetic character).
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;
    let digit = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => b'1',
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => b'2',
            'D' | 'T' => b'3',
            'L' => b'4',
            'M' | 'N' => b'5',
            'R' => b'6',
            _ => b'0', // vowels + H, W, Y
        }
    };
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last = digit(first);
    for &c in &letters[1..] {
        let d = digit(c);
        // H and W are transparent: they do not reset the previous code.
        if c == 'H' || c == 'W' {
            continue;
        }
        if d != b'0' && d != last {
            code.push(d as char);
            if code.len() == 4 {
                break;
            }
        }
        last = d;
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Similarity of the Soundex codes of the first tokens, compared with
/// Jaro-Winkler. Falls back to Jaro-Winkler on the first tokens themselves
/// when a code cannot be derived.
pub fn soundex_sim(a_tokens: &[String], b_tokens: &[String]) -> f64 {
    let a = a_tokens.first().map(String::as_str).unwrap_or("");
    let b = b_tokens.first().map(String::as_str).unwrap_or("");
    match (soundex(a), soundex(b)) {
        (Some(ca), Some(cb)) => {
            let x: Vec<char> = ca.chars().collect();
            let y: Vec<char> = cb.chars().collect();
            seq::jaro_winkler(&x, &y)
        }
        _ => {
            let x: Vec<char> = a.chars().collect();
            let y: Vec<char> = b.chars().collect();
            seq::jaro_winkler(&x, &y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_known_codes() {
        assert_eq!(soundex("Robert").unwrap(), "R163");
        assert_eq!(soundex("Rupert").unwrap(), "R163");
        assert_eq!(soundex("Ashcraft").unwrap(), "A261");
        assert_eq!(soundex("Ashcroft").unwrap(), "A261");
        assert_eq!(soundex("Tymczak").unwrap(), "T522");
        assert_eq!(soundex("Pfister").unwrap(), "P236");
        assert_eq!(soundex("Honeyman").unwrap(), "H555");
    }

    #[test]
    fn soundex_no_letters() {
        assert!(soundex("12345").is_none());
        assert!(soundex("").is_none());
    }

    #[test]
    fn phonetically_equal_names_score_one() {
        let a = vec!["robert".to_owned()];
        let b = vec!["rupert".to_owned()];
        assert_eq!(soundex_sim(&a, &b), 1.0);
    }

    #[test]
    fn numeric_tokens_fall_back() {
        let a = vec!["123".to_owned()];
        let b = vec!["123".to_owned()];
        assert_eq!(soundex_sim(&a, &b), 1.0);
    }
}
