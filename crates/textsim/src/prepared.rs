//! [`Prepared`]: a pre-tokenized string value.
//!
//! Feature extraction evaluates all 21 similarity measures against the same
//! pair of attribute values. Tokenizing once and sharing the result across
//! measures avoids re-deriving tokens, q-grams and counts 21 times.

use crate::tokenize;

/// A string plus every derived view the similarity measures need: normalized
/// characters, whitespace tokens, sorted token set, token counts, and 2-/3-
/// gram multisets.
///
/// Construct once per attribute value and reuse across measures:
///
/// ```
/// use textsim::{Prepared, SimilarityFunction};
/// let p = Prepared::new("Apple iPod");
/// let q = Prepared::new("apple ipod nano");
/// for f in SimilarityFunction::ALL {
///     let s = f.compute_prepared(&p, &q);
///     assert!((0.0..=1.0).contains(&s));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Prepared {
    normalized: String,
    chars: Vec<char>,
    tokens: Vec<String>,
    token_set: Vec<String>,
    token_counts: Vec<(String, u32)>,
    bigrams: Vec<(String, u32)>,
    trigrams: Vec<(String, u32)>,
}

impl Prepared {
    /// Normalize and tokenize `raw` into all derived views.
    pub fn new(raw: &str) -> Self {
        let normalized = tokenize::normalize(raw);
        let chars: Vec<char> = normalized.chars().collect();
        let tokens = tokenize::tokens(&normalized);
        let mut token_set = tokens.clone();
        token_set.sort_unstable();
        token_set.dedup();
        let token_counts = tokenize::counted(tokens.iter().cloned());
        let bigrams = tokenize::counted(tokenize::qgrams(&normalized, 2));
        let trigrams = tokenize::counted(tokenize::qgrams(&normalized, 3));
        Prepared {
            normalized,
            chars,
            tokens,
            token_set,
            token_counts,
            bigrams,
            trigrams,
        }
    }

    /// True when the value is null/absent for matching purposes (empty after
    /// normalization). The paper scores such pairs 0 for every measure.
    pub fn is_missing(&self) -> bool {
        self.normalized.is_empty()
    }

    /// The normalized (lowercased, punctuation-stripped) string.
    pub fn normalized(&self) -> &str {
        &self.normalized
    }

    /// Characters of the normalized string.
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// Whitespace tokens, in order of appearance.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Sorted, deduplicated token set.
    pub fn token_set(&self) -> &[String] {
        &self.token_set
    }

    /// Sorted token multiset with counts.
    pub fn token_counts(&self) -> &[(String, u32)] {
        &self.token_counts
    }

    /// Padded character bigram multiset with counts.
    pub fn bigrams(&self) -> &[(String, u32)] {
        &self.bigrams
    }

    /// Padded character trigram multiset with counts.
    pub fn trigrams(&self) -> &[(String, u32)] {
        &self.trigrams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_all_views() {
        let p = Prepared::new("Apple iPod apple");
        assert_eq!(p.normalized(), "apple ipod apple");
        assert_eq!(p.tokens().len(), 3);
        assert_eq!(p.token_set(), &["apple".to_owned(), "ipod".to_owned()]);
        assert_eq!(
            p.token_counts(),
            &[("apple".to_owned(), 2), ("ipod".to_owned(), 1)]
        );
        assert!(!p.bigrams().is_empty());
        assert!(!p.trigrams().is_empty());
        assert!(!p.is_missing());
    }

    #[test]
    fn empty_is_missing() {
        assert!(Prepared::new("").is_missing());
        assert!(Prepared::new(" .,! ").is_missing());
    }
}
