//! Character q-gram similarity measures (Ukkonen q-gram distance and the
//! Simon White bigram coefficient).

use crate::tokenize::merge_counts;

/// Ukkonen q-gram distance converted to a similarity:
/// `1 - sum |count_a - count_b| / (total_a + total_b)` over the q-gram
/// multisets (this crate uses padded trigrams).
pub fn qgram_sim(a: &[(String, u32)], b: &[(String, u32)]) -> f64 {
    let total: u32 = a.iter().map(|(_, n)| n).sum::<u32>() + b.iter().map(|(_, n)| n).sum::<u32>();
    if total == 0 {
        return 1.0;
    }
    let dist = merge_counts(a, b, |x, y| (f64::from(x) - f64::from(y)).abs());
    1.0 - dist / f64::from(total)
}

/// Simon White coefficient: Dice on bigram multisets,
/// `2 * |overlap| / (|a| + |b|)` where overlap takes `min(count_a, count_b)`
/// per gram.
pub fn simon_white(a: &[(String, u32)], b: &[(String, u32)]) -> f64 {
    let total: u32 = a.iter().map(|(_, n)| n).sum::<u32>() + b.iter().map(|(_, n)| n).sum::<u32>();
    if total == 0 {
        return 1.0;
    }
    let inter = merge_counts(a, b, |x, y| f64::from(x.min(y)));
    2.0 * inter / f64::from(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{counted, qgrams};

    fn grams(s: &str, q: usize) -> Vec<(String, u32)> {
        counted(qgrams(s, q))
    }

    #[test]
    fn qgram_identical_one() {
        let a = grams("hello world", 3);
        assert_eq!(qgram_sim(&a, &a), 1.0);
    }

    #[test]
    fn qgram_disjoint_zero() {
        let a = grams("aaa", 3);
        let b = grams("zzz", 3);
        assert_eq!(qgram_sim(&a, &b), 0.0);
    }

    #[test]
    fn simon_white_example() {
        // Classic Simon White article example: "Healed" vs "Sealed" on
        // letter-pair (unpadded) bigrams gives 0.8; with padding the value
        // differs but stays high.
        let a = grams("healed", 2);
        let b = grams("sealed", 2);
        let s = simon_white(&a, &b);
        assert!(s > 0.6 && s < 1.0, "{s}");
    }

    #[test]
    fn both_symmetric() {
        let a = grams("microsoft zune", 2);
        let b = grams("zune 30gb", 2);
        assert!((simon_white(&a, &b) - simon_white(&b, &a)).abs() < 1e-12);
        assert!((qgram_sim(&a, &b) - qgram_sim(&b, &a)).abs() < 1e-12);
    }
}
