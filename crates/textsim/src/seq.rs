//! Character-sequence similarity measures: edit distances, Jaro family,
//! global/local alignment, and longest-common-subsequence/substring.
//!
//! All functions take pre-split `&[char]` slices (see
//! [`crate::Prepared::chars`]) and return similarities in `[0, 1]`. Callers
//! guarantee non-empty inputs; the empty-vs-empty case returns 1 where the
//! strings are trivially equal.

/// Normalized Levenshtein similarity: `1 - dist / max(|a|, |b|)`.
pub fn levenshtein_sim(a: &[char], b: &[char]) -> f64 {
    let maxlen = a.len().max(b.len());
    if maxlen == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / maxlen as f64
}

/// Plain Levenshtein edit distance with a two-row DP.
pub fn levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Damerau-Levenshtein similarity (optimal string alignment:
/// edits plus adjacent transpositions).
pub fn damerau_levenshtein_sim(a: &[char], b: &[char]) -> f64 {
    let maxlen = a.len().max(b.len());
    if maxlen == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / maxlen as f64
}

/// Optimal-string-alignment distance (Damerau-Levenshtein without
/// substring-reuse).
pub fn damerau_levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let w = b.len() + 1;
    // Full DP table (the i-2 row access makes rolling rows awkward).
    let mut d = vec![vec![0usize; w]; a.len() + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[a.len()][b.len()]
}

/// Jaro similarity.
pub fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_match_idx: Vec<usize> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_match_idx.push(j);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Half-transpositions: matched b-characters in a-order vs. b-order.
    let mut t = 0usize;
    let b_seq: Vec<char> = a_match_idx.iter().map(|&j| b[j]).collect();
    let mut sorted_js = a_match_idx.clone();
    sorted_js.sort_unstable();
    let b_sorted: Vec<char> = sorted_js.iter().map(|&j| b[j]).collect();
    for (x, y) in b_seq.iter().zip(b_sorted.iter()) {
        if x != y {
            t += 1;
        }
    }
    let t = (t / 2) as f64;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with scaling factor 0.1 and max prefix length 4.
pub fn jaro_winkler(a: &[char], b: &[char]) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

const NW_GAP: f64 = 2.0;
const NW_SUB: f64 = 1.0;

/// Normalized Needleman-Wunsch similarity.
///
/// Global alignment distance with gap cost 2 and substitution cost 1
/// (the Simmetrics defaults), normalized as
/// `1 - dist / (max(|a|, |b|) * max(gap, sub))`.
pub fn needleman_wunsch_sim(a: &[char], b: &[char]) -> f64 {
    let maxlen = a.len().max(b.len());
    if maxlen == 0 {
        return 1.0;
    }
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| j as f64 * NW_GAP).collect();
    let mut cur = vec![0.0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = (i + 1) as f64 * NW_GAP;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + if ca == cb { 0.0 } else { NW_SUB };
            cur[j + 1] = sub.min(prev[j + 1] + NW_GAP).min(cur[j] + NW_GAP);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let dist = prev[b.len()];
    1.0 - dist / (maxlen as f64 * NW_GAP.max(NW_SUB))
}

const SW_MATCH: f64 = 1.0;
const SW_MISMATCH: f64 = -2.0;
const SW_GAP: f64 = -0.5;

/// Normalized Smith-Waterman similarity: best local alignment score with
/// match +1, mismatch −2, gap −0.5, normalized by `min(|a|, |b|)`.
pub fn smith_waterman_sim(a: &[char], b: &[char]) -> f64 {
    let minlen = a.len().min(b.len());
    if minlen == 0 {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { SW_MATCH } else { SW_MISMATCH };
            let v = diag.max(prev[j + 1] + SW_GAP).max(cur[j] + SW_GAP).max(0.0);
            cur[j + 1] = v;
            best = best.max(v);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best / (minlen as f64 * SW_MATCH)
}

const SWG_OPEN: f64 = -1.0;
const SWG_EXTEND: f64 = -0.5;

/// Normalized Smith-Waterman-Gotoh similarity: local alignment with affine
/// gaps (open −1, extend −0.5), match +1, mismatch −2, normalized by
/// `min(|a|, |b|)`.
pub fn smith_waterman_gotoh_sim(a: &[char], b: &[char]) -> f64 {
    let minlen = a.len().min(b.len());
    if minlen == 0 {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    let w = b.len() + 1;
    let neg = f64::NEG_INFINITY;
    // h: best ending at (i,j); e: gap in b (horizontal); f: gap in a.
    let mut h_prev = vec![0.0f64; w];
    let mut f_prev = vec![neg; w];
    let mut best = 0.0f64;
    for &ca in a {
        let mut h_cur = vec![0.0f64; w];
        let mut f_cur = vec![neg; w];
        let mut e = neg;
        for (j, &cb) in b.iter().enumerate() {
            e = (h_cur[j] + SWG_OPEN).max(e + SWG_EXTEND);
            f_cur[j + 1] = (h_prev[j + 1] + SWG_OPEN).max(f_prev[j + 1] + SWG_EXTEND);
            let diag = h_prev[j] + if ca == cb { SW_MATCH } else { SW_MISMATCH };
            let v = diag.max(e).max(f_cur[j + 1]).max(0.0);
            h_cur[j + 1] = v;
            best = best.max(v);
        }
        h_prev = h_cur;
        f_prev = f_cur;
    }
    best / (minlen as f64 * SW_MATCH)
}

/// Longest-common-subsequence similarity: `|lcs| / max(|a|, |b|)`.
pub fn lcs_seq_sim(a: &[char], b: &[char]) -> f64 {
    let maxlen = a.len().max(b.len());
    if maxlen == 0 {
        return 1.0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()] as f64 / maxlen as f64
}

/// Longest-common-substring similarity: `|lcsstr| / max(|a|, |b|)`.
pub fn lcs_str_sim(a: &[char], b: &[char]) -> f64 {
    let maxlen = a.len().max(b.len());
    if maxlen == 0 {
        return 1.0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = 0usize;
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best as f64 / maxlen as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein(&cs("kitten"), &cs("sitting")), 3);
        assert_eq!(levenshtein(&cs("abc"), &cs("abc")), 0);
        assert_eq!(levenshtein(&cs(""), &cs("abc")), 3);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein(&cs("ca"), &cs("ac")), 1);
        assert_eq!(levenshtein(&cs("ca"), &cs("ac")), 2);
        assert_eq!(damerau_levenshtein(&cs("abcdef"), &cs("abcdfe")), 1);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook examples.
        let s = jaro(&cs("martha"), &cs("marhta"));
        assert!((s - 0.944444).abs() < 1e-4, "{s}");
        let s = jaro(&cs("dixon"), &cs("dicksonx"));
        assert!((s - 0.766667).abs() < 1e-4, "{s}");
        assert_eq!(jaro(&cs("abc"), &cs("xyz")), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let jw = jaro_winkler(&cs("martha"), &cs("marhta"));
        assert!((jw - 0.961111).abs() < 1e-4, "{jw}");
        let j = jaro(&cs("marxxx"), &cs("maryyy"));
        let w = jaro_winkler(&cs("marxxx"), &cs("maryyy"));
        assert!(w > j);
    }

    #[test]
    fn needleman_wunsch_bounds() {
        assert_eq!(needleman_wunsch_sim(&cs("abc"), &cs("abc")), 1.0);
        let s = needleman_wunsch_sim(&cs("abc"), &cs("xyz"));
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn smith_waterman_finds_local_match() {
        // "ipod" is a perfect local match inside both strings.
        let s = smith_waterman_sim(&cs("ipod"), &cs("apple ipod nano"));
        assert_eq!(s, 1.0);
        let s = smith_waterman_gotoh_sim(&cs("ipod"), &cs("apple ipod nano"));
        assert_eq!(s, 1.0);
    }

    #[test]
    fn gotoh_prefers_contiguous_gaps() {
        // Affine penalties make one 4-char gap cheaper than two 2-char gaps;
        // linear Smith-Waterman scores both identically.
        let a = cs("abcdefgh");
        let one_gap = cs("abcdXXXXefgh");
        let two_gaps = cs("abXXcdefXXgh");
        assert!(smith_waterman_gotoh_sim(&a, &one_gap) > smith_waterman_gotoh_sim(&a, &two_gaps));
        assert!(
            (smith_waterman_sim(&a, &one_gap) - smith_waterman_sim(&a, &two_gaps)).abs() < 1e-12
        );
    }

    #[test]
    fn lcs_variants() {
        assert!((lcs_seq_sim(&cs("abcde"), &cs("axcxe")) - 0.6).abs() < 1e-12);
        assert!((lcs_str_sim(&cs("abcde"), &cs("xxabcxx")) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn all_measures_symmetric() {
        let pairs = [("panasonic dvd", "panasonic dvd player"), ("abc", "cba")];
        for (x, y) in pairs {
            let (a, b) = (cs(x), cs(y));
            for f in [
                levenshtein_sim,
                damerau_levenshtein_sim,
                jaro,
                jaro_winkler,
                needleman_wunsch_sim,
                smith_waterman_sim,
                smith_waterman_gotoh_sim,
                lcs_seq_sim,
                lcs_str_sim,
            ] {
                assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12);
            }
        }
    }
}
