//! Token-set and token-multiset similarity measures.
//!
//! Set measures take sorted, deduplicated token slices (see
//! [`crate::Prepared::token_set`]); multiset measures take count-sorted
//! `(token, count)` slices (see [`crate::Prepared::token_counts`]).

use crate::seq;
use crate::tokenize::merge_counts;

/// Size of the intersection of two sorted, deduplicated slices.
fn intersection_size(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|` on token sets.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Sørensen-Dice coefficient `2|A ∩ B| / (|A| + |B|)` on token sets.
pub fn dice(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` on token sets.
pub fn overlap(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::from(u8::from(a.len() == b.len()));
    }
    intersection_size(a, b) as f64 / a.len().min(b.len()) as f64
}

/// Cosine similarity `|A ∩ B| / sqrt(|A| · |B|)` on token sets.
pub fn cosine(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Block (L1 / Manhattan) distance on token multisets, converted to a
/// similarity: `1 - L1 / (|a| + |b|)` where `|·|` is total token count.
pub fn block_distance_sim(a: &[(String, u32)], b: &[(String, u32)]) -> f64 {
    let total: u32 = a.iter().map(|(_, n)| n).sum::<u32>() + b.iter().map(|(_, n)| n).sum::<u32>();
    if total == 0 {
        return 1.0;
    }
    let l1 = merge_counts(a, b, |x, y| (f64::from(x) - f64::from(y)).abs());
    1.0 - l1 / f64::from(total)
}

/// Euclidean (L2) distance on token multisets, converted to a similarity:
/// `1 - L2 / sqrt(|a|² + |b|²)` — the Simmetrics normalization, where the
/// denominator is the largest possible L2 for disjoint multisets of the
/// same total counts.
pub fn euclidean_sim(a: &[(String, u32)], b: &[(String, u32)]) -> f64 {
    let sq =
        |v: &[(String, u32)]| -> f64 { v.iter().map(|(_, n)| f64::from(*n) * f64::from(*n)).sum() };
    let denom = (sq(a) + sq(b)).sqrt();
    if denom == 0.0 {
        return 1.0;
    }
    let l2 = merge_counts(a, b, |x, y| {
        let d = f64::from(x) - f64::from(y);
        d * d
    })
    .sqrt();
    1.0 - l2 / denom
}

/// Monge-Elkan similarity with a Smith-Waterman inner measure:
/// symmetrized `avg_a max_b innersim(a, b)`.
pub fn monge_elkan(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let one_way = |xs: &[String], ys: &[String]| -> f64 {
        let mut total = 0.0;
        for x in xs {
            let xc: Vec<char> = x.chars().collect();
            let mut best: f64 = 0.0;
            for y in ys {
                let yc: Vec<char> = y.chars().collect();
                best = best.max(seq::smith_waterman_sim(&xc, &yc));
            }
            total += best;
        }
        total / xs.len() as f64
    };
    0.5 * (one_way(a, b) + one_way(b, a))
}

/// Generalized Jaccard: soft token overlap where tokens `x, y` with
/// `Jaro(x, y) >= 0.8` count as a (weighted) intersection element.
pub fn generalized_jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Greedy best-first soft matching.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    let acs: Vec<Vec<char>> = a.iter().map(|t| t.chars().collect()).collect();
    let bcs: Vec<Vec<char>> = b.iter().map(|t| t.chars().collect()).collect();
    for (i, x) in acs.iter().enumerate() {
        for (j, y) in bcs.iter().enumerate() {
            let s = seq::jaro(x, y);
            if s >= 0.8 {
                pairs.push((s, i, j));
            }
        }
    }
    pairs.sort_by(|p, q| q.0.partial_cmp(&p.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_a = vec![false; a.len()];
    let mut used_b = vec![false; b.len()];
    let mut soft_inter = 0.0;
    let mut matched = 0usize;
    for (s, i, j) in pairs {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            soft_inter += s;
            matched += 1;
        }
    }
    let union = (a.len() + b.len() - matched) as f64;
    soft_inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::counted;

    fn set(s: &str) -> Vec<String> {
        let mut v: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        v.sort();
        v.dedup();
        v
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn jaccard_known() {
        assert_eq!(jaccard(&set("a b c"), &set("b c d")), 0.5);
        assert_eq!(jaccard(&set("a"), &set("b")), 0.0);
        assert_eq!(jaccard(&set("a b"), &set("a b")), 1.0);
    }

    #[test]
    fn dice_known() {
        assert_eq!(dice(&set("a b"), &set("b c")), 0.5);
    }

    #[test]
    fn overlap_subsets_score_one() {
        assert_eq!(overlap(&set("a b"), &set("a b c d")), 1.0);
    }

    #[test]
    fn cosine_known() {
        let s = cosine(&set("a b"), &set("b c"));
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn block_distance_disjoint_zero() {
        let a = counted(toks("a b"));
        let b = counted(toks("c d"));
        assert_eq!(block_distance_sim(&a, &b), 0.0);
        assert_eq!(block_distance_sim(&a, &a), 1.0);
    }

    #[test]
    fn euclidean_identical_one() {
        let a = counted(toks("a b b"));
        assert_eq!(euclidean_sim(&a, &a), 1.0);
        let b = counted(toks("c d"));
        assert_eq!(euclidean_sim(&a, &b), 0.0);
    }

    #[test]
    fn monge_elkan_partial() {
        let s = monge_elkan(&toks("apple ipod"), &toks("apple ipod nano"));
        assert!(s > 0.6 && s <= 1.0, "{s}");
        assert_eq!(monge_elkan(&toks("a"), &toks("a")), 1.0);
    }

    #[test]
    fn generalized_jaccard_tolerates_typos() {
        let exact = jaccard(&set("panasonic dvd"), &set("panasonik dvd"));
        let soft = generalized_jaccard(&toks("panasonic dvd"), &toks("panasonik dvd"));
        assert!(soft > exact, "soft {soft} vs exact {exact}");
    }

    #[test]
    fn set_measures_symmetric() {
        let (a, b) = (set("x y z"), set("y z w v"));
        for f in [jaccard, dice, overlap, cosine] {
            assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12);
        }
    }
}
