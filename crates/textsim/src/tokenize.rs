//! Tokenizers: normalization, whitespace tokens and character q-grams.
//!
//! All similarity measures in this crate operate on the *normalized* form of
//! a string: lowercased, with punctuation mapped to spaces and runs of
//! whitespace collapsed. This mirrors the preprocessing entity-matching
//! pipelines apply before computing Simmetrics similarities.

/// Lowercase, replace punctuation with spaces and collapse whitespace.
///
/// ```
/// assert_eq!(textsim::tokenize::normalize("  Apple, iPod-Nano!  "), "apple ipod nano");
/// ```
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split a normalized string into whitespace tokens.
pub fn tokens(normalized: &str) -> Vec<String> {
    normalized.split_whitespace().map(str::to_owned).collect()
}

/// Character q-grams of a normalized string, padded with `q - 1` sentinel
/// characters (`#`) on each side, as in the Simmetrics q-gram tokenizer.
///
/// Strings shorter than `q` (after padding this can't happen for `q >= 1`)
/// still produce at least one gram; the empty string produces none.
pub fn qgrams(normalized: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-gram size must be at least 1");
    if normalized.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{normalized}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Multiset of items with counts, sorted by item for deterministic iteration.
///
/// Used for block/Euclidean distance and Simon White, which operate on
/// token/q-gram multisets rather than sets.
pub fn counted<I: IntoIterator<Item = String>>(items: I) -> Vec<(String, u32)> {
    let mut v: Vec<String> = items.into_iter().collect();
    v.sort_unstable();
    let mut out: Vec<(String, u32)> = Vec::new();
    for item in v {
        match out.last_mut() {
            Some((last, n)) if *last == item => *n += 1,
            _ => out.push((item, 1)),
        }
    }
    out
}

/// Intersect two count-sorted multisets, applying `f(count_a, count_b)` to
/// aligned entries (missing entries count 0). Returns the sum of `f` over the
/// union of keys.
pub fn merge_counts<F: FnMut(u32, u32) -> f64>(
    a: &[(String, u32)],
    b: &[(String, u32)],
    mut f: F,
) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut acc = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                acc += f(a[i].1, 0);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                acc += f(0, b[j].1);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                acc += f(a[i].1, b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.len() {
        acc += f(a[i].1, 0);
        i += 1;
    }
    while j < b.len() {
        acc += f(0, b[j].1);
        j += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_punct_and_case() {
        assert_eq!(normalize("Sony DSC-W55, 7.2MP"), "sony dsc w55 7 2mp");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn normalize_handles_unicode() {
        assert_eq!(normalize("Café Müller"), "café müller");
    }

    #[test]
    fn tokens_split() {
        assert_eq!(tokens("a bb ccc"), vec!["a", "bb", "ccc"]);
        assert!(tokens("").is_empty());
    }

    #[test]
    fn qgrams_padded() {
        let g = qgrams("ab", 2);
        assert_eq!(g, vec!["#a", "ab", "b#"]);
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgrams_q1_no_padding() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn counted_counts() {
        let c = counted(vec!["b".to_owned(), "a".to_owned(), "b".to_owned()]);
        assert_eq!(c, vec![("a".to_owned(), 1), ("b".to_owned(), 2)]);
    }

    #[test]
    fn merge_counts_union() {
        let a = counted(vec!["x".to_owned(), "y".to_owned()]);
        let b = counted(vec!["y".to_owned(), "z".to_owned(), "z".to_owned()]);
        // L1 distance: |1-0| + |1-1| + |0-2| = 3
        let l1 = merge_counts(&a, &b, |x, y| (x as f64 - y as f64).abs());
        assert_eq!(l1, 3.0);
    }
}
