//! Property-based tests of the similarity functions' metric structure.

use proptest::prelude::*;
use textsim::seq;
use textsim::tokenize::{counted, normalize, qgrams};
use textsim::{phonetic, qgram, Prepared, SimilarityFunction};

fn chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Levenshtein is a metric: triangle inequality holds.
    #[test]
    fn levenshtein_triangle(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let (ca, cb, cc) = (chars(&a), chars(&b), chars(&c));
        let ab = seq::levenshtein(&ca, &cb);
        let bc = seq::levenshtein(&cb, &cc);
        let ac = seq::levenshtein(&ca, &cc);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)={ab} + d(b,c)={bc}");
    }

    /// Levenshtein lower bound: at least the length difference.
    #[test]
    fn levenshtein_length_bound(a in "[a-z]{0,15}", b in "[a-z]{0,15}") {
        let d = seq::levenshtein(&chars(&a), &chars(&b));
        let diff = a.chars().count().abs_diff(b.chars().count());
        prop_assert!(d >= diff);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
    }

    /// Damerau-Levenshtein never exceeds Levenshtein (transpositions are
    /// an extra edit option).
    #[test]
    fn damerau_at_most_levenshtein(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let (ca, cb) = (chars(&a), chars(&b));
        prop_assert!(seq::damerau_levenshtein(&ca, &cb) <= seq::levenshtein(&ca, &cb));
    }

    /// Jaro-Winkler boosts but never reduces Jaro, staying in [0, 1].
    #[test]
    fn jaro_winkler_dominates_jaro(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        let (ca, cb) = (chars(&a), chars(&b));
        let j = seq::jaro(&ca, &cb);
        let w = seq::jaro_winkler(&ca, &cb);
        prop_assert!(w >= j - 1e-12);
        prop_assert!((0.0..=1.0).contains(&w));
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(s in ".{0,40}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    /// q-gram similarity is 1 exactly when the gram multisets coincide.
    #[test]
    fn qgram_identity(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        let ga = counted(qgrams(&normalize(&a), 3));
        let gb = counted(qgrams(&normalize(&b), 3));
        let s = qgram::qgram_sim(&ga, &gb);
        if ga == gb {
            prop_assert!((s - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(s < 1.0);
        }
    }

    /// Soundex codes always have the 1-letter + 3-digit shape.
    #[test]
    fn soundex_shape(word in "[a-zA-Z]{1,15}") {
        let code = phonetic::soundex(&word).expect("alphabetic input");
        prop_assert_eq!(code.len(), 4);
        let cs: Vec<char> = code.chars().collect();
        prop_assert!(cs[0].is_ascii_uppercase());
        prop_assert!(cs[1..].iter().all(|c| c.is_ascii_digit()));
    }

    /// Every one of the 21 measures scores an exact copy 1 and stays
    /// bounded against a perturbed copy.
    #[test]
    fn all_measures_selfsim(s in "[a-z0-9]{1,10}( [a-z0-9]{1,10}){0,4}") {
        let p = Prepared::new(&s);
        let mangled = format!("{s} extra");
        let q = Prepared::new(&mangled);
        for f in SimilarityFunction::ALL {
            prop_assert!((f.compute_prepared(&p, &p) - 1.0).abs() < 1e-9, "{:?}", f);
            let v = f.compute_prepared(&p, &q);
            prop_assert!((0.0..=1.0).contains(&v), "{:?} -> {}", f, v);
        }
    }

    /// Monge-Elkan with identical token multisets is 1; with disjoint
    /// character sets it is 0.
    #[test]
    fn monge_elkan_extremes(toks in prop::collection::vec("[a-f]{2,6}", 1..5)) {
        let s = toks.join(" ");
        let p = Prepared::new(&s);
        prop_assert!(
            (SimilarityFunction::MongeElkan.compute_prepared(&p, &p) - 1.0).abs() < 1e-9
        );
        let disjoint = Prepared::new("zzz xyx");
        let v = SimilarityFunction::MongeElkan.compute_prepared(&p, &disjoint);
        prop_assert!(v < 0.5, "disjoint ME should be low, got {v}");
    }
}
