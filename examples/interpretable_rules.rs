//! Interpretable rule learning on hand-built tables.
//!
//! Shows the full schema → blocking → Boolean featurization → LFP/LFN
//! pipeline on a tiny social-profile matching task you can read end to
//! end, then prints the learned DNF rule ensemble in the paper's §6.3
//! listing style. Rules trade a little F1 for a model a human can audit —
//! the interpretability side of the paper's quality/interpretability
//! trade-off.
//!
//! ```text
//! cargo run --release -p alem-bench --example interpretable_rules
//! ```

use alem_core::interpret::dnf_to_string;
use alem_core::prelude::*;
use datagen::social::{generate_social, SocialConfig};

fn main() {
    // A scaled-down version of the paper's §6.3.1 corpus: employee records
    // matched against a larger social-profile table, no usable ground
    // truth at scale — which is exactly when you want an auditable model.
    let cfg = SocialConfig {
        n_employees: 300,
        n_profiles: 2500,
        coverage: 0.8,
    };
    let dataset = generate_social(&cfg, 7);
    let blocking = BlockingConfig {
        jaccard_threshold: 0.2,
    };
    let (corpus, extractor) =
        Corpus::from_candidates(&dataset, &blocking).expect("valid blocking config");
    println!(
        "{} employees x {} profiles -> {} candidate pairs (skew {:.3})\n",
        dataset.left.len(),
        dataset.right.len(),
        corpus.len(),
        corpus.skew()
    );

    // LFP/LFN rule learning: high-precision conjunctions accumulate into
    // an ensemble; terminates by itself once no likely false
    // positives/negatives remain.
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams {
        max_labels: 600,
        stop_at_f1: None,
        ..LoopParams::default()
    };
    let mut al = ActiveLearner::new(LfpLfnStrategy::new(DnfTrainer::default(), 0.85), params);
    let run = al
        .run(&corpus, &oracle, 5)
        .unwrap_or_else(|e| panic!("rules run failed: {e}"));

    let strategy = al.into_strategy();
    let dnf = strategy.effective_dnf();
    println!(
        "terminated after {} iterations, {} labels, best F1 {:.3}",
        run.iterations.len(),
        run.total_labels(),
        run.best_f1()
    );
    println!(
        "#DNF atoms: {} (each atom is one auditable predicate)\n",
        dnf.atom_count()
    );
    println!(
        "learned matching rules:\n{}",
        dnf_to_string(&dnf, &extractor.bool_descriptions())
    );
}
