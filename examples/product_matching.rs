//! Product matching with a noisy crowd: compare selector/learner
//! combinations on an Abt-Buy-like catalog under labeling noise.
//!
//! This is the paper's §6.2 scenario: the Oracle is a crowd that flips 10%
//! of labels, so picking a noise-robust combination matters. The example
//! runs four strategies and prints a comparison table of quality, labels
//! and latency.
//!
//! ```text
//! cargo run --release -p alem-bench --example product_matching
//! ```

use alem_core::prelude::*;
use alem_core::report::TableReport;
use datagen::PaperDataset;

fn run_one<S: Strategy>(corpus: &Corpus, strategy: S, noise: f64) -> Vec<String> {
    let oracle = Oracle::noisy(corpus.truths().to_vec(), noise, 99)
        .unwrap_or_else(|e| panic!("invalid oracle configuration: {e}"));
    let params = LoopParams {
        max_labels: 800,
        stop_at_f1: None, // noisy oracles run to the label budget (§6.2)
        ..LoopParams::default()
    };
    let mut al = ActiveLearner::new(strategy, params);
    let run = al
        .run(corpus, &oracle, 11)
        .unwrap_or_else(|e| panic!("matching run failed: {e}"));
    vec![
        run.strategy.clone(),
        format!("{:.3}", run.best_f1()),
        format!("{:.3}", run.final_f1()),
        format!("{}", run.labels_to_convergence(0.01)),
        format!("{:.2}", run.total_user_wait_secs()),
    ]
}

fn main() {
    let gen_cfg = PaperDataset::AbtBuy.config(0.25);
    let dataset = datagen::generate(&gen_cfg, 42);
    let blocking = BlockingConfig {
        jaccard_threshold: gen_cfg.blocking_threshold,
    };
    let (corpus, _fx) =
        Corpus::from_candidates(&dataset, &blocking).expect("valid blocking config");
    println!(
        "Abt-Buy-like catalog: {} candidate pairs, skew {:.3}\n",
        corpus.len(),
        corpus.skew()
    );

    let noise = 0.10;
    let rows = vec![
        run_one(&corpus, TreeQbcStrategy::new(20), noise),
        run_one(&corpus, QbcStrategy::new(SvmTrainer::default(), 10), noise),
        run_one(
            &corpus,
            MarginSvmStrategy::builder().blocking_dims(1).build(),
            noise,
        ),
        run_one(
            &corpus,
            EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85),
            noise,
        ),
    ];

    let table = TableReport {
        id: "product_matching".into(),
        title: format!("Strategies under a {:.0}% noisy Oracle", noise * 100.0),
        header: vec![
            "Strategy".into(),
            "Best F1".into(),
            "Final F1".into(),
            "#Labels to converge".into(),
            "Total wait (s)".into(),
        ],
        rows,
    };
    println!("{}", table.to_text());
    println!("Tree ensembles degrade most gracefully with labeling noise —");
    println!("the paper's Fig. 14 finding.");
}
