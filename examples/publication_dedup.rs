//! Publication deduplication with latency-conscious selection.
//!
//! DBLP-ACM-style bibliographic matching is nearly clean, so every learner
//! reaches high F1 — what differs is *user wait time*. This example
//! contrasts learner-agnostic QBC (which retrains a bootstrap committee
//! every iteration) against margin selection with the paper's §5.1
//! blocking-dimension optimization, printing the latency decomposition the
//! paper plots in Fig. 10.
//!
//! ```text
//! cargo run --release -p alem-bench --example publication_dedup
//! ```

use alem_core::prelude::*;
use datagen::PaperDataset;

fn main() {
    let gen_cfg = PaperDataset::DblpAcm.config(0.5);
    let dataset = datagen::generate(&gen_cfg, 42);
    let blocking = BlockingConfig {
        jaccard_threshold: gen_cfg.blocking_threshold,
    };
    let (corpus, _fx) =
        Corpus::from_candidates(&dataset, &blocking).expect("valid blocking config");
    println!(
        "bibliographic corpus: {} candidate pairs, skew {:.3}\n",
        corpus.len(),
        corpus.skew()
    );

    let params = LoopParams {
        max_labels: 400,
        ..LoopParams::default()
    };

    // Learner-agnostic QBC: 20 bootstrap SVMs retrained per iteration.
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let mut qbc = ActiveLearner::new(QbcStrategy::new(SvmTrainer::default(), 20), params.clone());
    let qbc_run = qbc
        .run(&corpus, &oracle, 3)
        .unwrap_or_else(|e| panic!("QBC run failed: {e}"));

    // Learner-aware margin with a single blocking dimension.
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let mut margin = ActiveLearner::new(
        MarginSvmStrategy::builder().blocking_dims(1).build(),
        params,
    );
    let margin_run = margin
        .run(&corpus, &oracle, 3)
        .unwrap_or_else(|e| panic!("margin run failed: {e}"));

    println!(
        "{:<26} {:>8} {:>14} {:>12} {:>10}",
        "strategy", "best F1", "committee (s)", "scoring (s)", "total (s)"
    );
    for run in [&qbc_run, &margin_run] {
        let committee: f64 = run.iterations.iter().map(|s| s.committee_secs).sum();
        let scoring: f64 = run.iterations.iter().map(|s| s.scoring_secs).sum();
        println!(
            "{:<26} {:>8.3} {:>14.3} {:>12.3} {:>10.3}",
            run.strategy,
            run.best_f1(),
            committee,
            scoring,
            run.total_user_wait_secs()
        );
    }
    let speedup = qbc_run
        .iterations
        .iter()
        .map(|s| s.selection_secs())
        .sum::<f64>()
        / margin_run
            .iterations
            .iter()
            .map(|s| s.selection_secs())
            .sum::<f64>()
            .max(1e-9);
    println!(
        "\nmargin(1Dim) selects examples {speedup:.0}x faster than QBC(20) at comparable F1 —"
    );
    println!("the committee-creation time is the bottleneck the paper's §5 removes.");
}
