//! Quickstart: active learning for entity matching in ~40 lines.
//!
//! Generates a small synthetic beer-matching dataset (BeerAdvocate vs
//! RateBeer), blocks and featurizes it, then runs the paper's
//! best-performing combination — a random forest with learner-aware
//! query-by-committee — against a perfect labeling Oracle.
//!
//! ```text
//! cargo run --release -p alem-bench --example quickstart
//! ```

use alem_core::prelude::*;
use datagen::PaperDataset;

fn main() {
    // 1. A dataset: two tables of beer listings plus hidden ground truth.
    let gen_cfg = PaperDataset::Beer.config(1.0);
    let dataset = datagen::generate(&gen_cfg, 42);
    println!(
        "tables: {} x {} records, {} true matches",
        dataset.left.len(),
        dataset.right.len(),
        dataset.matches.len()
    );

    // 2. Block the Cartesian product and extract 21-similarity features.
    let blocking = BlockingConfig {
        jaccard_threshold: gen_cfg.blocking_threshold,
    };
    let (corpus, _extractor) =
        Corpus::from_candidates(&dataset, &blocking).expect("valid blocking config");
    println!(
        "post-blocking pairs: {} (skew {:.3}, {} feature dims)",
        corpus.len(),
        corpus.skew(),
        corpus.dim()
    );

    // 3. Active learning: 30 seed labels, batches of 10, perfect Oracle.
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams::builder().build(); // the paper's defaults
    let mut learner = ActiveLearner::new(TreeQbcStrategy::builder().trees(20).build(), params);
    let run = learner
        .run(&corpus, &oracle, 7)
        .unwrap_or_else(|e| panic!("quickstart run failed: {e}"));

    // 4. Results.
    for it in run.iterations.iter().step_by(4) {
        println!(
            "labels {:>4}  progressive F1 {:.3}  (train {:.0} ms, select {:.0} ms)",
            it.labels_used,
            it.f1,
            it.train_secs * 1e3,
            it.selection_secs() * 1e3,
        );
    }
    println!(
        "best F1 {:.3} after {} labels ({} Oracle queries)",
        run.best_f1(),
        run.labels_to_convergence(0.005),
        oracle.queries()
    );
}
