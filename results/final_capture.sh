#!/bin/bash
# Wait for the experiments queue, then capture the final test and bench outputs.
until grep -q QUEUE_DONE /root/repo/results/queue.log 2>/dev/null; do sleep 15; done
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt > /dev/null
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo CAPTURE_DONE
