#!/bin/bash
# Wait for the main suite (pid passed as $1), then run extensions+ablations.
while kill -0 "$1" 2>/dev/null; do sleep 10; done
cd /root/repo
cargo run --release -p alem-bench --bin figures -- extensions --scale 0.15 --seeds 3 --json results/extensions_scale0.15.json > results/extensions_scale0.15.txt 2>&1
cargo run --release -p alem-bench --bin figures -- ablations --scale 0.15 --json results/ablations_scale0.15.json > results/ablations_scale0.15.txt 2>&1
echo QUEUE_DONE
