#!/usr/bin/env python3
"""Validate a BENCH_blocking.json report produced by bench_blocking.

Usage: validate_bench_blocking.py REPORT [--min-candidates N] [--smoke]

Fails (exit 1) when the report is structurally wrong or violates the
sweep's contracts:

- top-level fields (bench, dataset, strategies, threads_list) present
  and well-typed, at least two strategies swept;
- every strategy carries recall / reduction_ratio in [0, 1], a
  consistent candidates-vs-reduction-ratio relationship, group-wise
  recall rows whose retained counts never exceed totals, and one run row
  per thread count;
- per strategy, every run's fingerprint matches (thread invariance) and
  `fingerprints_identical` / `all_fingerprints_thread_invariant` agree
  with the rows they summarize;
- unless --smoke, the best strategy streamed at least --min-candidates
  pairs (default 100,000) and the report's own scale_floor_met agrees.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"validate_bench_blocking: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def in01(x) -> bool:
    return isinstance(x, (int, float)) and -1e-9 <= x <= 1.0 + 1e-9


def main() -> None:
    args = sys.argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    min_candidates = 100_000
    smoke = "--smoke" in args
    if "--min-candidates" in args:
        min_candidates = int(args[args.index("--min-candidates") + 1])

    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    if report.get("bench") != "blocking":
        fail(f"bench field is {report.get('bench')!r}, want 'blocking'")
    ds = report.get("dataset")
    if not isinstance(ds, dict) or not all(
        k in ds for k in ("left_rows", "right_rows", "matches", "total_pairs")
    ):
        fail("dataset block missing or incomplete")
    if ds["total_pairs"] != ds["left_rows"] * ds["right_rows"]:
        fail("total_pairs != left_rows * right_rows")

    threads = report.get("threads_list")
    if not isinstance(threads, list) or not threads:
        fail("threads_list missing or empty")

    strategies = report.get("strategies")
    if not isinstance(strategies, list) or len(strategies) < 2:
        fail("need at least two swept strategies")

    all_invariant = True
    max_candidates = 0
    for s in strategies:
        name = s.get("strategy", "<unnamed>")
        if not in01(s.get("recall")):
            fail(f"{name}: recall {s.get('recall')!r} outside [0, 1]")
        if not in01(s.get("reduction_ratio")):
            fail(f"{name}: reduction_ratio {s.get('reduction_ratio')!r} outside [0, 1]")
        cand = s.get("candidates")
        if not isinstance(cand, int) or cand < 0:
            fail(f"{name}: bad candidates {cand!r}")
        max_candidates = max(max_candidates, cand)
        expected_rr = 1.0 - cand / ds["total_pairs"]
        if abs(s["reduction_ratio"] - expected_rr) > 1e-9:
            fail(f"{name}: reduction_ratio inconsistent with candidates")
        if s.get("matches_retained", 0) > s.get("matches_total", 0):
            fail(f"{name}: matches_retained exceeds matches_total")
        for g in s.get("group_recall", []):
            if g.get("matches_retained", 0) > g.get("matches_total", 0):
                fail(f"{name}: group {g.get('group')!r} retained > total")
            if not in01(g.get("recall")):
                fail(f"{name}: group {g.get('group')!r} recall outside [0, 1]")
        runs = s.get("runs", [])
        if [r.get("threads") for r in runs] != threads:
            fail(f"{name}: run rows do not cover threads_list {threads}")
        fps = {r.get("fingerprint") for r in runs}
        identical = len(fps) == 1
        if identical != s.get("fingerprints_identical"):
            fail(f"{name}: fingerprints_identical flag disagrees with run rows")
        if s.get("fingerprint") not in fps:
            fail(f"{name}: summary fingerprint not among run fingerprints")
        all_invariant &= identical
        for r in runs:
            if not isinstance(r.get("wall_secs"), (int, float)) or r["wall_secs"] < 0:
                fail(f"{name}: bad wall_secs in run row")

    if not all_invariant:
        fail("fingerprints diverge across thread counts")
    if report.get("all_fingerprints_thread_invariant") is not True:
        fail("all_fingerprints_thread_invariant flag is not true")
    if not smoke:
        if max_candidates < min_candidates:
            fail(
                f"scale floor not met: max {max_candidates} < {min_candidates} candidates"
            )
        if report.get("scale_floor_met") is not True:
            fail("scale_floor_met flag is not true")

    print(
        f"validate_bench_blocking: OK ({len(strategies)} strategies, "
        f"max {max_candidates} candidates, threads {threads})"
    )


if __name__ == "__main__":
    main()
