#!/usr/bin/env python3
"""Validate telemetry emitted by alem-obs: JSONL events or Prometheus text.

Usage: validate_metrics.py METRICS_FILE [--require name1,name2,...]

The format is autodetected from the first non-empty line: `{` means the
alem-obs JSONL event stream, anything else is treated as the Prometheus
text exposition produced by the serve fleet's `metrics` op
(`alem-admin metrics --text`).

JSONL mode fails (exit 1) if the file is empty, any line is not valid
JSON, or any line is missing one of the required keys: span, dur_us,
iter. Prometheus mode fails if the file has no samples, a sample line is
malformed, a `# TYPE` names an unknown kind, or any summary's quantile
values decrease as the quantile increases. With --require, both modes
additionally fail unless every listed name appears among the emitted
names (dots and underscores are interchangeable, so CI lists can use the
dotted `serve.*` spelling against the sanitized exposition).
"""

import json
import re
import sys

# name, optional {labels}, value
SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9][0-9eE+.\-]*)$"
)
QUANTILE_RE = re.compile(r'quantile="([^"]+)"')
PROM_KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}


def canon(name: str) -> str:
    """Dots and underscores are interchangeable across the two formats."""
    return name.replace(".", "_")


def validate_jsonl(path: str, require: set[str]) -> int:
    required = {"span", "dur_us", "iter"}
    lines = 0
    spans = set()
    names = set()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: invalid JSON: {e}", file=sys.stderr)
                return 1
            missing = required - event.keys()
            if missing:
                print(
                    f"{path}:{lineno}: missing keys {sorted(missing)}: {raw}",
                    file=sys.stderr,
                )
                return 1
            lines += 1
            names.add(event["span"])
            if event.get("type") == "span":
                spans.add(event["span"])
    if lines == 0:
        print(f"{path}: no telemetry events emitted", file=sys.stderr)
        return 1
    missing_names = {n for n in require if canon(n) not in {canon(m) for m in names}}
    if missing_names:
        print(
            f"{path}: required metric names never emitted: {sorted(missing_names)}",
            file=sys.stderr,
        )
        return 1
    print(f"{path}: {lines} events OK, {len(spans)} distinct spans: {sorted(spans)}")
    return 0


def validate_prometheus(path: str, require: set[str]) -> int:
    samples = 0
    families: set[str] = set()
    # summary base name -> list of (quantile, value) in file order
    quantiles: dict[str, list[tuple[float, float]]] = {}
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("#"):
                parts = raw.split()
                if len(parts) >= 4 and parts[1] == "TYPE":
                    families.add(parts[2])
                    if parts[3] not in PROM_KINDS:
                        print(
                            f"{path}:{lineno}: unknown metric kind '{parts[3]}'",
                            file=sys.stderr,
                        )
                        return 1
                continue
            m = SAMPLE_RE.match(raw)
            if not m:
                print(f"{path}:{lineno}: malformed sample line: {raw}", file=sys.stderr)
                return 1
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            samples += 1
            families.add(name)
            q = QUANTILE_RE.search(labels)
            if q:
                try:
                    quantiles.setdefault(name, []).append(
                        (float(q.group(1)), float(value))
                    )
                except ValueError:
                    print(
                        f"{path}:{lineno}: non-numeric quantile sample: {raw}",
                        file=sys.stderr,
                    )
                    return 1
    if samples == 0:
        print(f"{path}: no Prometheus samples emitted", file=sys.stderr)
        return 1
    for name, pairs in quantiles.items():
        ordered = sorted(pairs)
        for (qa, va), (qb, vb) in zip(ordered, ordered[1:]):
            if va > vb:
                print(
                    f"{path}: {name} quantiles not monotone: "
                    f"q{qa}={va} > q{qb}={vb}",
                    file=sys.stderr,
                )
                return 1
    known = {canon(f) for f in families}
    missing_names = {n for n in require if canon(n) not in known}
    if missing_names:
        print(
            f"{path}: required metric families never emitted: {sorted(missing_names)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"{path}: {samples} samples OK, {len(families)} families, "
        f"{len(quantiles)} summaries monotone"
    )
    return 0


def main() -> int:
    argv = sys.argv[1:]
    require: set[str] = set()
    if "--require" in argv:
        i = argv.index("--require")
        if i + 1 >= len(argv):
            print("--require needs a comma-separated name list", file=sys.stderr)
            return 2
        require = {n for n in argv[i + 1].split(",") if n}
        del argv[i : i + 2]
    if len(argv) != 1:
        print(
            "usage: validate_metrics.py METRICS_FILE [--require a,b,...]",
            file=sys.stderr,
        )
        return 2
    path = argv[0]
    first = ""
    with open(path, encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if raw:
                first = raw
                break
    if not first:
        print(f"{path}: empty metrics file", file=sys.stderr)
        return 1
    if first.startswith("{"):
        return validate_jsonl(path, require)
    return validate_prometheus(path, require)


if __name__ == "__main__":
    sys.exit(main())
