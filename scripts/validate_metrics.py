#!/usr/bin/env python3
"""Validate a telemetry JSONL file emitted by alem-obs.

Usage: validate_metrics.py METRICS.jsonl

Fails (exit 1) if the file is empty, any line is not valid JSON, or any
line is missing one of the required keys: span, dur_us, iter.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: validate_metrics.py METRICS.jsonl", file=sys.stderr)
        return 2
    path = sys.argv[1]
    required = {"span", "dur_us", "iter"}
    lines = 0
    spans = set()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: invalid JSON: {e}", file=sys.stderr)
                return 1
            missing = required - event.keys()
            if missing:
                print(
                    f"{path}:{lineno}: missing keys {sorted(missing)}: {raw}",
                    file=sys.stderr,
                )
                return 1
            lines += 1
            if event.get("type") == "span":
                spans.add(event["span"])
    if lines == 0:
        print(f"{path}: no telemetry events emitted", file=sys.stderr)
        return 1
    print(f"{path}: {lines} events OK, {len(spans)} distinct spans: {sorted(spans)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
