#!/usr/bin/env python3
"""Validate a telemetry JSONL file emitted by alem-obs.

Usage: validate_metrics.py METRICS.jsonl [--require name1,name2,...]

Fails (exit 1) if the file is empty, any line is not valid JSON, or any
line is missing one of the required keys: span, dur_us, iter. With
--require, additionally fails unless every listed name appears among the
file's span/counter/gauge names (used by CI to pin the serve.* metric
namespace).
"""

import json
import sys


def main() -> int:
    argv = sys.argv[1:]
    require: set[str] = set()
    if "--require" in argv:
        i = argv.index("--require")
        if i + 1 >= len(argv):
            print("--require needs a comma-separated name list", file=sys.stderr)
            return 2
        require = {n for n in argv[i + 1].split(",") if n}
        del argv[i : i + 2]
    if len(argv) != 1:
        print(
            "usage: validate_metrics.py METRICS.jsonl [--require a,b,...]",
            file=sys.stderr,
        )
        return 2
    path = argv[0]
    required = {"span", "dur_us", "iter"}
    lines = 0
    spans = set()
    names = set()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: invalid JSON: {e}", file=sys.stderr)
                return 1
            missing = required - event.keys()
            if missing:
                print(
                    f"{path}:{lineno}: missing keys {sorted(missing)}: {raw}",
                    file=sys.stderr,
                )
                return 1
            lines += 1
            names.add(event["span"])
            if event.get("type") == "span":
                spans.add(event["span"])
    if lines == 0:
        print(f"{path}: no telemetry events emitted", file=sys.stderr)
        return 1
    missing_names = require - names
    if missing_names:
        print(
            f"{path}: required metric names never emitted: {sorted(missing_names)}",
            file=sys.stderr,
        )
        return 1
    print(f"{path}: {lines} events OK, {len(spans)} distinct spans: {sorted(spans)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
