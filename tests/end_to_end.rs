//! End-to-end integration tests: dataset generation → blocking →
//! featurization → active learning → evaluation, for every learner family.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::ensemble::EnsembleSvmStrategy;
use alem_core::learner::{DnfTrainer, NnTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::strategy::{
    LfpLfnStrategy, MarginNnStrategy, MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy,
};
use datagen::PaperDataset;

fn easy_corpus() -> Corpus {
    // DBLP-ACM is the easiest dataset: every learner should do well.
    let cfg = PaperDataset::DblpAcm.config(0.05);
    let ds = datagen::generate(&cfg, 42);
    let (corpus, _) = Corpus::from_candidates(
        &ds,
        &BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        },
    )
    .unwrap();
    corpus
}

fn run<S: Strategy>(corpus: &Corpus, strategy: S, max_labels: usize) -> f64 {
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams {
        max_labels,
        ..LoopParams::default()
    };
    ActiveLearner::new(strategy, params)
        .run(corpus, &oracle, 3)
        .expect("perfect-oracle run")
        .best_f1()
}

#[test]
fn trees_reach_high_f1_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(&corpus, TreeQbcStrategy::new(10), 400);
    assert!(f1 > 0.9, "Trees(10) best F1 {f1}");
}

#[test]
fn linear_margin_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(&corpus, MarginSvmStrategy::new(SvmTrainer::default()), 400);
    assert!(f1 > 0.8, "Linear-Margin best F1 {f1}");
}

#[test]
fn linear_blocking_dims_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(
        &corpus,
        MarginSvmStrategy::builder().blocking_dims(1).build(),
        400,
    );
    assert!(f1 > 0.75, "Linear-Margin(1Dim) best F1 {f1}");
}

#[test]
fn qbc_svm_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(&corpus, QbcStrategy::new(SvmTrainer::default(), 5), 400);
    assert!(f1 > 0.8, "Linear-QBC(5) best F1 {f1}");
}

#[test]
fn nn_margin_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(&corpus, MarginNnStrategy::new(NnTrainer::default()), 300);
    assert!(f1 > 0.7, "NN-Margin best F1 {f1}");
}

#[test]
fn ensemble_svm_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(
        &corpus,
        EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85),
        400,
    );
    assert!(f1 > 0.8, "Linear-Margin(Ensemble) best F1 {f1}");
}

#[test]
fn rules_end_to_end() {
    let corpus = easy_corpus();
    let f1 = run(
        &corpus,
        LfpLfnStrategy::new(DnfTrainer::default(), 0.85),
        400,
    );
    // Rules are limited to 3 similarity functions; 0.6 on clean data is
    // the bar (the paper reports 0.962 on the real full-size corpus).
    assert!(f1 > 0.6, "Rules(LFP/LFN) best F1 {f1}");
}

#[test]
fn holdout_evaluation_end_to_end() {
    let corpus = easy_corpus();
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams {
        eval: EvalMode::Holdout { test_frac: 0.2 },
        max_labels: 300,
        stop_at_f1: None,
        ..LoopParams::default()
    };
    let r = ActiveLearner::new(TreeQbcStrategy::new(10), params)
        .run(&corpus, &oracle, 3)
        .expect("holdout run");
    assert!(r.best_f1() > 0.85, "holdout Trees best F1 {}", r.best_f1());
    // Hold-out label budget never exceeds the 80% train pool.
    assert!(r.total_labels() <= (corpus.len() * 4) / 5 + 1);
}

#[test]
fn noisy_oracle_degrades_gracefully() {
    let corpus = easy_corpus();
    let run_with_noise = |noise: f64| {
        let oracle = Oracle::noisy(corpus.truths().to_vec(), noise, 5).expect("valid noise");
        let params = LoopParams {
            max_labels: 300,
            stop_at_f1: None,
            ..LoopParams::default()
        };
        ActiveLearner::new(TreeQbcStrategy::new(10), params)
            .run(&corpus, &oracle, 3)
            .expect("noisy run")
            .best_f1()
    };
    let clean = run_with_noise(0.0);
    let noisy = run_with_noise(0.4);
    assert!(
        clean > noisy + 0.05,
        "40% noise should hurt: clean {clean} vs noisy {noisy}"
    );
}

#[test]
fn social_corpus_pipeline() {
    let cfg = datagen::social::SocialConfig {
        n_employees: 120,
        n_profiles: 800,
        coverage: 0.8,
    };
    let ds = datagen::social::generate_social(&cfg, 3);
    let (corpus, _) = Corpus::from_candidates(
        &ds,
        &BlockingConfig {
            jaccard_threshold: 0.2,
        },
    )
    .unwrap();
    assert!(
        corpus.len() > 100,
        "social corpus too small: {}",
        corpus.len()
    );
    let f1 = run(&corpus, TreeQbcStrategy::new(10), 300);
    assert!(f1 > 0.7, "Trees on social corpus best F1 {f1}");
}
