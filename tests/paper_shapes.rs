//! Shape tests: the qualitative findings of the paper's evaluation must
//! hold on the synthetic corpora. These are the claims EXPERIMENTS.md
//! tracks; each test checks an ordering or a crossover, never an absolute
//! number.
//!
//! Kept at small scale so the suite stays fast; the bench harness
//! (`figures all`) reproduces the same shapes at larger scales.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::evaluator::RunResult;
use alem_core::learner::{DnfTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::strategy::{
    LfpLfnStrategy, MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy,
};
use datagen::PaperDataset;

fn corpus(d: PaperDataset, scale: f64) -> Corpus {
    let cfg = d.config(scale);
    let ds = datagen::generate(&cfg, 42);
    let (corpus, _) = Corpus::from_candidates(
        &ds,
        &BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        },
    )
    .unwrap();
    corpus
}

fn run<S: Strategy>(c: &Corpus, s: S, max_labels: usize) -> RunResult {
    let oracle = Oracle::perfect(c.truths().to_vec());
    let params = LoopParams {
        max_labels,
        ..LoopParams::default()
    };
    ActiveLearner::new(s, params)
        .run(c, &oracle, 17)
        .expect("perfect-oracle run")
}

/// §6.1: "random forests with learner-aware QBC invariably produce the
/// best quality EM" — trees beat linear-margin on a product dataset.
#[test]
fn trees_beat_linear_on_products() {
    let c = corpus(PaperDataset::AbtBuy, 0.12);
    let trees = run(&c, TreeQbcStrategy::new(20), 500).best_f1();
    let linear = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 500).best_f1();
    assert!(
        trees > linear + 0.1,
        "Trees(20) {trees:.3} should clearly beat Linear-Margin {linear:.3}"
    );
}

/// §6.1: products are the hard domain — every fixed strategy scores lower
/// on Abt-Buy than on DBLP-ACM.
#[test]
fn products_harder_than_publications() {
    let abt = corpus(PaperDataset::AbtBuy, 0.12);
    let dblp = corpus(PaperDataset::DblpAcm, 0.12);
    let f_abt = run(&abt, MarginSvmStrategy::new(SvmTrainer::default()), 400).best_f1();
    let f_dblp = run(&dblp, MarginSvmStrategy::new(SvmTrainer::default()), 400).best_f1();
    assert!(
        f_dblp > f_abt + 0.1,
        "DBLP {f_dblp:.3} should be much easier than Abt-Buy {f_abt:.3}"
    );
}

/// §6.1: "there is little to choose between margin-based selection and
/// learner-agnostic QBC in terms of quality" for linear classifiers...
#[test]
fn margin_and_qbc_comparable_quality() {
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let margin = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 400).best_f1();
    let qbc = run(&c, QbcStrategy::new(SvmTrainer::default(), 10), 400).best_f1();
    assert!(
        (margin - qbc).abs() < 0.12,
        "margin {margin:.3} vs QBC {qbc:.3} should be comparable"
    );
}

/// ...but margin has (much) lower selection latency because there is no
/// committee to train (Fig. 10).
#[test]
fn margin_selects_faster_than_qbc() {
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let margin = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 300);
    let qbc = run(&c, QbcStrategy::new(SvmTrainer::default(), 20), 300);
    let sel = |r: &RunResult| -> f64 { r.iterations.iter().map(|s| s.selection_secs()).sum() };
    assert!(
        sel(&qbc) > 2.0 * sel(&margin),
        "QBC selection {:.4}s should dwarf margin {:.4}s",
        sel(&qbc),
        sel(&margin)
    );
}

/// §4.1: committee creation dominates QBC latency and grows with committee
/// size.
#[test]
fn committee_creation_grows_with_size() {
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let small = run(&c, QbcStrategy::new(SvmTrainer::default(), 2), 200);
    let large = run(&c, QbcStrategy::new(SvmTrainer::default(), 20), 200);
    let committee = |r: &RunResult| -> f64 { r.iterations.iter().map(|s| s.committee_secs).sum() };
    assert!(
        committee(&large) > 3.0 * committee(&small),
        "QBC(20) committee time {:.4}s vs QBC(2) {:.4}s",
        committee(&large),
        committee(&small)
    );
}

/// Fig. 8c/9c: larger tree ensembles reach at least the quality of tiny
/// ones.
#[test]
fn larger_forests_no_worse() {
    let c = corpus(PaperDataset::AbtBuy, 0.12);
    let t2 = run(&c, TreeQbcStrategy::new(2), 500).best_f1();
    let t20 = run(&c, TreeQbcStrategy::new(20), 500).best_f1();
    assert!(
        t20 + 0.03 >= t2,
        "Trees(20) {t20:.3} should be at least Trees(2) {t2:.3}"
    );
}

/// §6.3: rules terminate early with far fewer labels and far fewer atoms
/// than tree ensembles (interpretability), at lower quality on products.
#[test]
fn rules_fewer_atoms_and_labels_than_trees() {
    let c = corpus(PaperDataset::AbtBuy, 0.12);
    let trees = run(&c, TreeQbcStrategy::new(10), 500);
    let rules = run(&c, LfpLfnStrategy::new(DnfTrainer::default(), 0.85), 500);
    assert!(
        rules.total_labels() < trees.total_labels(),
        "rules labels {} should undercut trees {}",
        rules.total_labels(),
        trees.total_labels()
    );
    let last_atoms = |r: &RunResult| r.iterations.last().and_then(|s| s.atoms).unwrap_or(0);
    assert!(
        last_atoms(&rules) * 5 < last_atoms(&trees).max(1),
        "rule atoms {} vs tree atoms {}",
        last_atoms(&rules),
        last_atoms(&trees)
    );
}

/// Fig. 14a: tree-ensemble quality degrades monotonically-ish with noise
/// (0% clearly better than 40%).
#[test]
fn noise_hurts_trees() {
    let c = corpus(PaperDataset::AbtBuy, 0.12);
    let run_noise = |noise: f64| {
        let oracle = Oracle::noisy(c.truths().to_vec(), noise, 5).expect("valid noise");
        let params = LoopParams {
            max_labels: 400,
            stop_at_f1: None,
            ..LoopParams::default()
        };
        ActiveLearner::new(TreeQbcStrategy::new(10), params)
            .run(&c, &oracle, 17)
            .expect("noisy run")
            .best_f1()
    };
    let f0 = run_noise(0.0);
    let f40 = run_noise(0.4);
    assert!(f0 > f40 + 0.1, "0% {f0:.3} vs 40% {f40:.3}");
}

/// §6.2 extension: majority voting recovers quality under heavy labeling
/// noise.
#[test]
fn majority_voting_recovers_noisy_quality() {
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let run_votes = |votes: usize| {
        let oracle =
            Oracle::noisy_with_voting(c.truths().to_vec(), 0.35, votes, 5).expect("odd committee");
        let params = LoopParams {
            max_labels: 400,
            stop_at_f1: None,
            ..LoopParams::default()
        };
        ActiveLearner::new(TreeQbcStrategy::new(10), params)
            .run(&c, &oracle, 17)
            .expect("voting run")
            .best_f1()
    };
    let one = run_votes(1);
    let five = run_votes(5);
    assert!(
        five > one + 0.05,
        "5-vote correction {five:.3} should beat single vote {one:.3} at 35% noise"
    );
}

/// §5.1 extension: LSH-approximate margin keeps quality comparable to
/// exact margin selection.
#[test]
fn lsh_margin_quality_comparable() {
    use alem_core::strategy::LshMarginStrategy;
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let exact = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 400).best_f1();
    let lsh = run(
        &c,
        LshMarginStrategy::new(SvmTrainer::default(), 32, 4),
        400,
    )
    .best_f1();
    assert!(
        (exact - lsh).abs() < 0.15,
        "exact margin {exact:.3} vs LSH {lsh:.3}"
    );
}

/// §2 related-work claim: IWAL's randomized queries are no more
/// label-efficient than pure margin selection on the F1 objective.
#[test]
fn iwal_not_better_than_margin() {
    use alem_core::selector::iwal::IwalConfig;
    use alem_core::strategy::IwalSvmStrategy;
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let margin = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 300).best_f1();
    let iwal = run(
        &c,
        IwalSvmStrategy::new(mlcore::svm::SvmConfig::default(), IwalConfig::default()),
        300,
    )
    .best_f1();
    assert!(
        margin + 0.05 >= iwal,
        "margin {margin:.3} should not lose to IWAL {iwal:.3}"
    );
}

/// §5.1 / Fig. 11: blocking-dimension selection keeps comparable quality
/// to full-dimension margin.
#[test]
fn blocking_dims_preserve_quality() {
    let c = corpus(PaperDataset::DblpAcm, 0.12);
    let full = run(&c, MarginSvmStrategy::new(SvmTrainer::default()), 400).best_f1();
    let b1 = run(
        &c,
        MarginSvmStrategy::builder().blocking_dims(1).build(),
        400,
    )
    .best_f1();
    assert!(
        (full - b1).abs() < 0.12,
        "margin(all) {full:.3} vs margin(1Dim) {b1:.3} should be comparable"
    );
}
