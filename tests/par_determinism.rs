//! The parallel layer's core contract: for any thread count, selections,
//! scores, and whole-run fingerprints are byte-identical to the sequential
//! path. Chunk boundaries depend only on `(len, n_threads)` and per-member
//! RNG seeds are pre-drawn on the caller's thread, so `--threads N` may
//! only change wall-clock time, never results.

use alem_core::corpus::Corpus;
use alem_core::learner::{DnfTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::selector;
use alem_core::session::SessionConfig;
use alem_core::strategy::{
    LfpLfnStrategy, MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy,
};
use alem_par::Parallelism;
use mlcore::svm::LinearSvm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A small two-cluster corpus with Boolean predicates so every strategy
/// (including the rule learner) can run on it.
fn corpus(n: usize) -> Corpus {
    let feats: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![i as f64 / n as f64, (i % 13) as f64 / 13.0])
        .collect();
    // Predicate 0 tracks the ground truth closely (so the rule learner can
    // find a candidate clause); predicate 1 is a noisy distractor.
    let bools: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                f64::from(i >= 3 * n / 4 || i % 31 == 0),
                f64::from(i % 2 == 0),
            ]
        })
        .collect();
    let truth: Vec<bool> = (0..n).map(|i| i >= 3 * n / 4).collect();
    Corpus::from_features(feats, truth).with_bool_features(bools)
}

fn params() -> LoopParams {
    LoopParams {
        seed_size: 20,
        batch_size: 10,
        max_labels: 120,
        eval: EvalMode::Progressive,
        stop_at_f1: None,
    }
}

fn strategies() -> Vec<Box<dyn Strategy + Send>> {
    vec![
        Box::new(MarginSvmStrategy::new(SvmTrainer::default())),
        Box::new(MarginSvmStrategy::builder().blocking_dims(1).build()),
        Box::new(QbcStrategy::new(SvmTrainer::default(), 5)),
        Box::new(TreeQbcStrategy::builder().trees(5).build()),
        Box::new(LfpLfnStrategy::new(DnfTrainer::default(), 0.85)),
    ]
}

fn fingerprint_at(strategy: Box<dyn Strategy + Send>, threads: usize) -> String {
    let c = corpus(300);
    let oracle = Oracle::perfect(c.truths().to_vec());
    let cfg = SessionConfig {
        parallelism: Parallelism::fixed(threads),
        ..SessionConfig::default()
    };
    let mut al = ActiveLearner::new(strategy, params());
    al.run_session(&c, &oracle, 93, &cfg)
        .expect("session failed")
        .run_result()
        .expect("session halted")
        .deterministic_fingerprint()
}

/// Every strategy's full-session fingerprint is invariant across thread
/// counts — the ISSUE's headline acceptance criterion, in miniature.
#[test]
fn session_fingerprints_are_thread_count_invariant() {
    for make in 0..strategies().len() {
        let baseline = fingerprint_at(strategies().remove(make), 1);
        for t in [2, 3, 8] {
            let name = strategies()[make].name();
            assert_eq!(
                baseline,
                fingerprint_at(strategies().remove(make), t),
                "strategy {name} diverged at {t} threads"
            );
        }
    }
}

/// `Strategy::score_pool` returns the same scores for any thread count
/// once the strategy is fitted.
#[test]
fn strategy_score_pool_is_thread_count_invariant() {
    let c = corpus(200);
    let labeled: Vec<(usize, bool)> = (0..40).map(|i| (i * 5, c.truth(i * 5))).collect();
    let unlabeled: Vec<usize> = (0..200).filter(|i| i % 5 != 0).collect();
    for mut s in strategies() {
        let mut rng = StdRng::seed_from_u64(11);
        s.fit(&c, &labeled, &mut rng).expect("fit failed");
        // QBC needs one select to build its committee before score_pool.
        let mut rng2 = StdRng::seed_from_u64(12);
        s.select(
            &c,
            &labeled,
            &unlabeled,
            10,
            &mut rng2,
            &alem_obs::Registry::disabled(),
        );
        s.set_parallelism(Parallelism::sequential());
        let baseline = match s.score_pool(&c, &unlabeled) {
            Ok(b) => b,
            Err(_) => {
                // No scorable model on this corpus (e.g. the rule learner
                // found no candidate clause); every thread count must then
                // fail the same way.
                for t in [2, 3, 8] {
                    s.set_parallelism(Parallelism::fixed(t));
                    assert!(s.score_pool(&c, &unlabeled).is_err(), "{}", s.name());
                }
                continue;
            }
        };
        assert_eq!(baseline.len(), unlabeled.len(), "{}", s.name());
        for t in [2, 3, 8] {
            s.set_parallelism(Parallelism::fixed(t));
            let scores = s.score_pool(&c, &unlabeled).expect("score_pool failed");
            assert_eq!(baseline, scores, "{} diverged at {t} threads", s.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `chunks` is a pure function of `(len, n_threads)`: boundaries
    /// tile `0..len` exactly, sizes differ by at most one, and the chunk
    /// count never exceeds either input.
    #[test]
    fn chunk_boundaries_tile_the_pool(len in 0usize..500, threads in 1usize..12) {
        let chunks = alem_par::chunks(len, threads);
        let mut covered = 0usize;
        let mut sizes = Vec::new();
        for c in &chunks {
            prop_assert_eq!(c.start, covered);
            covered = c.end;
            sizes.push(c.len());
        }
        prop_assert_eq!(covered, len);
        if len > 0 {
            prop_assert!(chunks.len() <= threads.min(len));
            let max = sizes.iter().max().expect("nonempty");
            let min = sizes.iter().min().expect("nonempty");
            prop_assert!(max - min <= 1, "uneven chunks: {:?}", sizes);
        }
    }

    /// Parallel margin scoring equals sequential scoring for arbitrary
    /// pools and thread counts, and selections drawn from those scores
    /// with the same RNG are identical.
    #[test]
    fn margin_selection_matches_sequential(
        xs in prop::collection::vec(-1.0f64..1.0, 12..120),
        threads in 2usize..9,
        batch in 1usize..10,
        seed in 0u64..200,
    ) {
        let n = xs.len();
        let feats: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let truth: Vec<bool> = xs.iter().map(|&v| v > 0.0).collect();
        let c = Corpus::from_features(feats, truth);
        let svm = LinearSvm::from_parts(vec![1.3], -0.1);
        let unlabeled: Vec<usize> = (0..n).collect();

        let seq = selector::margin::score_pool(
            |x| svm.margin(x), &c, &unlabeled, &Parallelism::sequential());
        let par = selector::margin::score_pool(
            |x| svm.margin(x), &c, &unlabeled, &Parallelism::fixed(threads));
        prop_assert_eq!(&seq, &par);

        let pick = |p: &Parallelism| {
            let mut rng = StdRng::seed_from_u64(seed);
            selector::margin::select(
                |x| svm.margin(x), &c, &unlabeled, batch, &mut rng,
                &alem_obs::Registry::disabled(), p,
            ).chosen
        };
        prop_assert_eq!(pick(&Parallelism::sequential()), pick(&Parallelism::fixed(threads)));
    }
}

/// The two fan-out primitives agree with their sequential equivalents for
/// every thread count in the test matrix.
#[test]
fn map_and_run_match_sequential() {
    let items: Vec<u64> = (0..257).collect();
    let expect: Vec<u64> = items.iter().map(|&v| v * v + 1).collect();
    for t in THREAD_COUNTS {
        let got = Parallelism::fixed(t).map(&items, |&v| v * v + 1);
        assert_eq!(expect, got, "map diverged at {t} threads");
        let jobs: Vec<_> = items.iter().map(|&v| move || v * v + 1).collect();
        let got = Parallelism::fixed(t).run(jobs);
        assert_eq!(expect, got, "run diverged at {t} threads");
    }
}
