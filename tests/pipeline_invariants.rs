//! Property-based tests on the data pipeline: similarity bounds, blocking
//! soundness, featurization invariants, tree→DNF equivalence, and F1
//! algebra.

use alem_core::blocking::BlockingConfig;
use alem_core::features::FeatureExtractor;
use alem_core::interpret::{tree_dnf_predict, tree_match_paths};
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use mlcore::data::TrainSet;
use mlcore::metrics::Confusion;
use mlcore::tree::TreeConfig;
use mlcore::Classifier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use textsim::{Prepared, SimilarityFunction};

/// Strategy for short text values (including empties and punctuation).
fn text_value() -> impl Strategy<Value = String> {
    "[a-z0-9 ,.!-]{0,30}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every similarity function is bounded, symmetric, and 1 on identical
    /// non-missing inputs.
    #[test]
    fn similarity_bounds_symmetry_identity(a in text_value(), b in text_value()) {
        let pa = Prepared::new(&a);
        let pb = Prepared::new(&b);
        for f in SimilarityFunction::ALL {
            let ab = f.compute_prepared(&pa, &pb);
            let ba = f.compute_prepared(&pb, &pa);
            prop_assert!((0.0..=1.0).contains(&ab), "{:?} out of range: {}", f, ab);
            prop_assert!((ab - ba).abs() < 1e-9, "{:?} asymmetric: {} vs {}", f, ab, ba);
            if !pa.is_missing() {
                let aa = f.compute_prepared(&pa, &pa);
                prop_assert!((aa - 1.0).abs() < 1e-9, "{:?} identity: {}", f, aa);
            }
        }
    }

    /// Blocking is sound: every surviving pair shares at least one token,
    /// and raising the threshold only shrinks the result.
    #[test]
    fn blocking_soundness_and_monotonicity(
        names in prop::collection::vec("[a-z]{2,8}( [a-z]{2,8}){0,3}", 2..20),
    ) {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records: Vec<Record> = names
            .iter()
            .map(|n| Record::new(vec![Some(n.clone())]))
            .collect();
        let half = records.len() / 2;
        let ds = EmDataset {
            left: Table::new("l", schema.clone(), records[..half].to_vec()),
            right: Table::new("r", schema, records[half..].to_vec()),
            matches: Default::default(),
            name: "prop".into(),
        };
        let lo = BlockingConfig { jaccard_threshold: 0.1 }.block(&ds);
        let hi = BlockingConfig { jaccard_threshold: 0.5 }.block(&ds);
        // Monotonicity.
        for p in &hi {
            prop_assert!(lo.contains(p));
        }
        // Soundness: surviving pairs share a token.
        for &(l, r) in &lo {
            let lt = ds.left.record(l as usize).value(0).unwrap_or("");
            let rt = ds.right.record(r as usize).value(0).unwrap_or("");
            let lset: std::collections::HashSet<&str> = lt.split_whitespace().collect();
            let shares = rt.split_whitespace().any(|t| lset.contains(t));
            prop_assert!(shares, "{lt:?} vs {rt:?} survived without shared tokens");
        }
    }

    /// Feature vectors are bounded and have the documented dimensionality;
    /// Boolean featurization is monotone in the threshold.
    #[test]
    fn featurization_invariants(
        l in prop::collection::vec(text_value(), 2..4),
        r in prop::collection::vec(text_value(), 2..4),
    ) {
        let n_attrs = l.len().min(r.len());
        let schema = Schema::new(
            (0..n_attrs).map(|i| {
                let name: &'static str = ["a", "b", "c"][i];
                (name, AttrKind::Text)
            }).collect(),
        );
        let lrec = Record::new(l[..n_attrs].iter().map(|v| Some(v.clone())).collect());
        let rrec = Record::new(r[..n_attrs].iter().map(|v| Some(v.clone())).collect());
        let ds = EmDataset {
            left: Table::new("l", schema.clone(), vec![lrec]),
            right: Table::new("r", schema, vec![rrec]),
            matches: Default::default(),
            name: "prop".into(),
        };
        let fx = FeatureExtractor::new(&ds);
        let row = fx.extract_pair((0, 0));
        prop_assert_eq!(row.len(), 21 * n_attrs);
        prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        let brow = fx.booleanize(&row);
        prop_assert_eq!(brow.len(), 30 * n_attrs);
        // Monotone within each (attr, sim) block of 10 thresholds.
        for block in brow.chunks(10) {
            for w in block.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }

    /// A trained tree and its DNF conversion agree on every input.
    #[test]
    fn tree_dnf_equivalence(
        labels in prop::collection::vec(any::<bool>(), 8..40),
        seed in 0u64..100,
    ) {
        let n = labels.len();
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 3) as f64 / 3.0])
            .collect();
        let set = TrainSet::new(&xs, &labels);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(seed));
        let paths = tree_match_paths(&tree);
        for x in &xs {
            prop_assert_eq!(tree.predict(x), tree_dnf_predict(&paths, x));
        }
    }

    /// F1 algebra: F1 is the harmonic mean, bounded by min/max of P and R.
    #[test]
    fn f1_algebra(preds in prop::collection::vec(any::<bool>(), 1..100), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let actual: Vec<bool> = preds.iter().map(|_| rng.gen()).collect();
        let c = Confusion::from_predictions(&preds, &actual);
        let (p, r, f1) = (c.precision(), c.recall(), c.f1());
        prop_assert!((0.0..=1.0).contains(&f1));
        if p + r > 0.0 {
            prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
            prop_assert!(f1 <= p.max(r) + 1e-12);
            prop_assert!(f1 >= 0.0);
        } else {
            prop_assert_eq!(f1, 0.0);
        }
    }

    /// Numeric similarity is bounded, symmetric and 1 iff equal.
    #[test]
    fn numeric_sim_properties(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let s = textsim::numeric_sim(Some(a), Some(b));
        let t = textsim::numeric_sim(Some(b), Some(a));
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - t).abs() < 1e-9);
        if (a - b).abs() < f64::EPSILON {
            prop_assert_eq!(s, 1.0);
        }
    }
}
