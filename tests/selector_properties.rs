//! Property-based tests on the example selectors and oracle.

use alem_core::corpus::Corpus;
use alem_core::learner::SvmTrainer;
use alem_core::oracle::Oracle;
use alem_core::selector::{bottom_k_asc, qbc, top_k_desc};
use mlcore::svm::LinearSvm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus_from(xs: Vec<f64>) -> Corpus {
    let feats: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
    let truth: Vec<bool> = xs.iter().map(|&v| v > 0.5).collect();
    Corpus::from_features(feats, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// top_k/bottom_k always return k distinct in-range indices.
    #[test]
    fn topk_returns_distinct_indices(
        scores in prop::collection::vec(0.0f64..1.0, 1..200),
        k in 1usize..50,
        seed in 0u64..1000,
    ) {
        let scored: Vec<(usize, f64)> = scores.iter().cloned().enumerate().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let top = top_k_desc(scored.clone(), k, &mut rng);
        let bot = bottom_k_asc(scored, k, &mut rng);
        for out in [&top, &bot] {
            prop_assert!(out.len() == k.min(scores.len()));
            let mut s = out.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), out.len());
            prop_assert!(out.iter().all(|&i| i < scores.len()));
        }
    }

    /// The k-th highest selected score dominates every unselected score.
    #[test]
    fn topk_scores_dominate(
        scores in prop::collection::vec(0.0f64..1.0, 2..100),
        k in 1usize..20,
    ) {
        let scored: Vec<(usize, f64)> = scores.iter().cloned().enumerate().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let top = top_k_desc(scored, k, &mut rng);
        let _k = k.min(scores.len());
        let min_selected = top.iter().map(|&i| scores[i]).fold(f64::INFINITY, f64::min);
        for (i, &s) in scores.iter().enumerate() {
            if !top.contains(&i) {
                prop_assert!(s <= min_selected + 1e-12);
            }
        }
    }

    /// QBC selections always come from the unlabeled pool, without
    /// duplicates, at most batch-many.
    #[test]
    fn qbc_selects_within_pool(
        n in 20usize..120,
        batch in 1usize..15,
        seed in 0u64..100,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let corpus = corpus_from(xs);
        let labeled: Vec<(usize, bool)> =
            (0..n).step_by(4).map(|i| (i, corpus.truth(i))).collect();
        let unlabeled: Vec<usize> =
            (0..n).filter(|i| i % 4 != 0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (sel, _committee) = qbc::select(
            &SvmTrainer::default(), 3, &corpus, &labeled, &unlabeled, batch, &mut rng, false,
            &alem_obs::Registry::disabled(), &alem_par::Parallelism::sequential(),
        );
        prop_assert!(sel.chosen.len() <= batch);
        let mut sorted = sel.chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.chosen.len());
        prop_assert!(sel.chosen.iter().all(|i| unlabeled.contains(i)));
    }

    /// Committee variance is in [0, 0.25] for any committee and example.
    #[test]
    fn committee_variance_bounds(
        weights in prop::collection::vec(-3.0f64..3.0, 1..8),
        x in -2.0f64..2.0,
    ) {
        let committee: Vec<LinearSvm> = weights
            .iter()
            .map(|&w| LinearSvm::from_parts(vec![w], 0.1))
            .collect();
        let v = qbc::committee_variance(&committee, &[x]);
        prop_assert!((0.0..=0.25 + 1e-12).contains(&v));
    }

    /// Noisy oracle flip rate concentrates near the configured noise.
    #[test]
    fn oracle_flip_rate(noise in 0.0f64..=1.0, seed in 0u64..50) {
        let n = 4000;
        let oracle = Oracle::noisy(vec![true; n], noise, seed).expect("valid noise");
        let flips = (0..n).filter(|&i| !oracle.label(i)).count();
        let rate = flips as f64 / n as f64;
        prop_assert!((rate - noise).abs() < 0.05, "rate {} vs noise {}", rate, noise);
    }

    /// Blocking-dimension pruning never selects an example whose blocking
    /// dims are all zero (when unpruned candidates exist).
    #[test]
    fn blocking_dim_never_selects_pruned(
        zeros in 1usize..40,
        nonzeros in 1usize..40,
        k in 1usize..3,
    ) {
        let mut feats = Vec::new();
        for _ in 0..zeros {
            // Zero in every dimension: pruned for any choice of blocking
            // dims.
            feats.push(vec![0.0, 0.0]);
        }
        for i in 0..nonzeros {
            feats.push(vec![0.1 + i as f64 * 0.01, 0.7]);
        }
        let n = feats.len();
        let truth = vec![false; n];
        let corpus = Corpus::from_features(feats, truth);
        let svm = LinearSvm::from_parts(vec![5.0, 0.01], -1.0);
        let unlabeled: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let out = alem_core::selector::blocking_dim::select(
            &svm, k, &corpus, &unlabeled, 5, &mut rng,
            &alem_obs::Registry::disabled(), &alem_par::Parallelism::sequential(),
        );
        prop_assert_eq!(out.pruned, zeros);
        prop_assert!(out.selection.chosen.iter().all(|&i| i >= zeros));
    }
}
