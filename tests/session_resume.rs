//! Property-based tests for the fault-tolerant session layer: a run that
//! is killed at a checkpoint and resumed must reproduce the uninterrupted
//! run exactly (deterministic fingerprint, i.e. bit-identical F1 values).

use alem_core::corpus::Corpus;
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::session::{Checkpoint, SessionConfig, SessionOutcome};
use alem_core::strategy::TreeQbcStrategy;
use proptest::prelude::*;

fn corpus(n: usize) -> Corpus {
    let feats: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            vec![t, (1.0 - t) * 0.7, (i % 7) as f64 / 7.0]
        })
        .collect();
    let truth: Vec<bool> = (0..n).map(|i| i >= (n * 3) / 5).collect();
    Corpus::from_features(feats, truth)
}

fn oracle(c: &Corpus, noise: f64) -> Oracle {
    if noise == 0.0 {
        Oracle::perfect(c.truths().to_vec())
    } else {
        match Oracle::noisy(c.truths().to_vec(), noise, 923) {
            Ok(o) => o,
            Err(e) => panic!("valid noise rejected: {e}"),
        }
    }
}

fn complete(outcome: SessionOutcome) -> alem_core::evaluator::RunResult {
    match outcome.run_result() {
        Some(r) => r,
        None => panic!("session halted when it should have completed"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint → kill → resume is invisible: the resumed session's
    /// deterministic fingerprint equals the uninterrupted run's, for
    /// random loop parameters, halt points, and oracle noise.
    #[test]
    fn resume_equals_uninterrupted(
        seed_size in 4usize..16,
        batch_size in 1usize..6,
        max_labels in 30usize..70,
        halt_after in 1usize..5,
        run_seed in 0u64..1000,
        noisy in any::<bool>(),
    ) {
        let c = corpus(120);
        let noise = if noisy { 0.15 } else { 0.0 };
        let params = LoopParams {
            seed_size,
            batch_size,
            max_labels,
            stop_at_f1: None,
            ..LoopParams::default()
        };

        // Uninterrupted reference run.
        let reference = {
            let o = oracle(&c, noise);
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(3), params.clone());
            match al.run_session(&c, &o, run_seed, &SessionConfig::default()) {
                Ok(out) => complete(out),
                Err(e) => panic!("reference run failed: {e}"),
            }
        };

        // Same run, killed after `halt_after` iterations...
        let ckpt_path = std::env::temp_dir().join(format!(
            "alem-prop-{}-{seed_size}-{batch_size}-{max_labels}-{halt_after}-{run_seed}.json",
            std::process::id()
        ));
        let halt_config = SessionConfig {
            checkpoint_path: Some(ckpt_path.clone()),
            halt_after: Some(halt_after),
            ..SessionConfig::default()
        };
        let halted = {
            let o = oracle(&c, noise);
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(3), params.clone());
            match al.run_session(&c, &o, run_seed, &halt_config) {
                Ok(out) => out,
                Err(e) => panic!("halting run failed: {e}"),
            }
        };

        let resumed = match halted {
            // Run finished before the kill point: results must match as-is.
            SessionOutcome::Complete(r) => r,
            SessionOutcome::Halted { checkpoint, .. } => {
                // ... then resumed from the on-disk checkpoint with a
                // *fresh* oracle (fast-forwarded internally) and strategy.
                let ckpt = match Checkpoint::load(&checkpoint) {
                    Ok(ck) => ck,
                    Err(e) => panic!("checkpoint load failed: {e}"),
                };
                let o = oracle(&c, noise);
                let mut al = ActiveLearner::new(TreeQbcStrategy::new(3), params.clone());
                match al.resume_session(&c, &o, ckpt, &SessionConfig::default()) {
                    Ok(out) => complete(out),
                    Err(e) => panic!("resume failed: {e}"),
                }
            }
        };
        let _ = std::fs::remove_file(&ckpt_path);

        prop_assert_eq!(
            reference.deterministic_fingerprint(),
            resumed.deterministic_fingerprint()
        );
        prop_assert_eq!(reference.total_labels(), resumed.total_labels());
    }
}
