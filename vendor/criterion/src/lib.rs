//! Offline stand-in for `criterion`. Implements the API subset the bench
//! targets use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros) as a plain wall-clock timer printing median per-iteration times.
//! No statistics, plots, or baselines — enough to compare hot paths.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units-of-work annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&id.to_string(), self.throughput);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time one execution of `routine` (criterion times batches; one
    /// execution per sample keeps this shim simple and predictable).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }

    fn report(&mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let extra = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 / median)
            }
            _ => String::new(),
        };
        println!("  {id}: median {:.3} ms{extra}", median * 1e3);
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &k| b.iter(|| k * 2));
        group.finish();
        assert_eq!(runs, 3);
    }
}
