//! Offline stand-in for `crossbeam`, providing the scoped-thread subset
//! used by the bench runner (`crossbeam::scope(|s| { s.spawn(|_| ...) })`),
//! implemented over `std::thread::scope`.

use std::thread;

/// Handle passed to the scope closure; spawns threads bound to the scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, propagating its panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that may borrow from the enclosing scope. The closure
    /// receives the scope handle again (crossbeam signature), so nested
    /// spawns work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before this
/// returns. Always `Ok` — a panicking child propagates the panic (matching
/// how the workspace uses the crossbeam `Result`: it only `expect`s it).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
                .len()
        })
        .unwrap();
        assert_eq!(out, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
