//! Offline stand-in for `parking_lot`, backed by `std::sync`. Only the
//! `Mutex` API subset used in this workspace: `new`, `lock` (no poisoning
//! in the public API — a poisoned std lock is recovered transparently),
//! and `into_inner`.

use std::sync::MutexGuard;

/// Mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking. Panics in other holders don't poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
