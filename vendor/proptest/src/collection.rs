//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Size specification for collection strategies: a fixed size or a
/// half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Vec strategy with element strategy `elem` and size in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
