//! Offline stand-in for `proptest`. Implements the API subset this
//! workspace uses — the `proptest!` macro, `Strategy` for ranges / regex
//! string literals / `any::<T>()` / `prop::collection::vec`, and the
//! `prop_assert*` macros — as plain seeded random sampling. No shrinking:
//! a failing case reports the assertion directly, which is enough for CI.

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;
pub mod string;

/// The RNG driving generation (deterministic per test name).
pub type TestRng = StdRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Regex-literal strategies: `"[a-z]{2,8}( [a-z]{2,8}){0,3}"` generates
/// strings matching the pattern (supported subset: literals, `.`, char
/// classes with ranges, groups, and `{m,n}` / `{n}` / `?` / `*` / `+`
/// quantifiers).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of magnitudes and signs; finite only.
        let exp = rng.gen_range(-6i32..=6);
        (rng.gen::<f64>() - 0.5) * 10f64.powi(exp)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-`proptest!` configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed (FNV-1a of the test name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// RNG deterministically seeded from a test name (used by `proptest!`).
pub fn rng_for(name: &str) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed_for(name))
}

/// Property-test entry point: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds; vec sizes honor their range.
        #[test]
        fn ranges_and_vecs(
            x in 0.0f64..1.0,
            n in 3usize..7,
            flags in prop::collection::vec(any::<bool>(), 2..5),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((2..5).contains(&flags.len()));
        }

        #[test]
        fn regex_strategies(s in "[a-z]{2,8}( [a-z]{2,8}){0,3}") {
            for tok in s.split(' ') {
                prop_assert!((2..=8).contains(&tok.len()), "token {tok:?}");
                prop_assert!(tok.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::seed_from_u64(crate::seed_for("t"));
        let mut b = crate::TestRng::seed_from_u64(crate::seed_for("t"));
        let s: String = crate::Strategy::sample(&".{0,20}", &mut a);
        let t: String = crate::Strategy::sample(&".{0,20}", &mut b);
        assert_eq!(s, t);
    }
}
