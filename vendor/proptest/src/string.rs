//! Regex-subset string generation for `&str` strategies.
//!
//! Supported syntax: literal characters, `.` (printable ASCII except
//! newline), character classes `[a-z0-9 ,.!-]` (ranges and literals, `-`
//! literal when last), groups `(...)`, and quantifiers `{m,n}`, `{n}`,
//! `?`, `*`, `+` (unbounded capped at 8 repeats). No alternation.

use crate::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
    Group(Vec<Quantified>),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_seq(&chars, &mut pos, false);
    assert!(
        pos == chars.len(),
        "unsupported regex tail in {pattern:?} at {pos}"
    );
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Quantified> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if c == ')' {
            assert!(in_group, "unmatched `)` in regex");
            return seq;
        }
        *pos += 1;
        let atom = match c {
            '.' => Atom::Dot,
            '[' => Atom::Class(parse_class(chars, pos)),
            '(' => {
                let inner = parse_seq(chars, pos, true);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unterminated group in regex"
                );
                *pos += 1;
                Atom::Group(inner)
            }
            '\\' => {
                let esc = chars[*pos];
                *pos += 1;
                match esc {
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    other => Atom::Literal(other),
                }
            }
            '|' | '*' | '+' | '?' | '{' => panic!("unsupported regex syntax `{c}`"),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(chars, pos);
        seq.push(Quantified { atom, min, max });
    }
    seq
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (usize, usize) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, 8)
        }
        Some('+') => {
            *pos += 1;
            (1, 8)
        }
        Some('{') => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: usize = min.parse().expect("regex quantifier lower bound");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut max = String::new();
                while chars[*pos].is_ascii_digit() {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse().expect("regex quantifier upper bound")
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unterminated quantifier");
            *pos += 1;
            (min, max)
        }
        _ => (1, 1),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert!(chars.get(*pos) != Some(&'^'), "negated classes unsupported");
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = if chars[*pos] == '\\' {
            *pos += 1;
            chars[*pos]
        } else {
            chars[*pos]
        };
        *pos += 1;
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(lo <= hi, "descending class range");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(chars.get(*pos) == Some(&']'), "unterminated class");
    *pos += 1;
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn emit_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let reps = if q.min == q.max {
            q.min
        } else {
            rng.gen_range(q.min..=q.max)
        };
        for _ in 0..reps {
            emit_atom(&q.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Dot => {
            // Printable ASCII, occasionally multi-byte, never '\n'.
            if rng.gen_bool(0.05) {
                out.push(['é', 'ß', 'λ', '中'][rng.gen_range(0usize..4)]);
            } else {
                out.push(rng.gen_range(0x20u8..0x7f) as char);
            }
        }
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0u32..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick out of range");
        }
        Atom::Group(inner) => emit_seq(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classes_ranges_groups_quantifiers() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = generate("[a-z0-9 ,.!-]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " ,.!-".contains(c)));

            let t = generate("[a-z]{2,8}( [a-z]{2,8}){0,3}", &mut rng);
            for tok in t.split(' ') {
                assert!((2..=8).contains(&tok.len()));
            }

            let d = generate(".{0,20}", &mut rng);
            assert!(!d.contains('\n'));
            assert!(d.chars().count() <= 20);
        }
    }
}
