//! Offline stand-in for the `rand` crate, implementing the 0.8 API subset
//! the alem workspace uses: `StdRng` (seedable, deterministic), the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`, and `SliceRandom`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but deterministic, seedable, and
//! statistically strong enough for the benchmark suite. Code in this
//! workspace must only rely on *seed-reproducibility*, never on matching
//! upstream rand's exact streams.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`] (the upstream
/// `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Numeric types `gen_range` can produce. Implemented per type, with the
/// range impls blanket over it — one impl per range shape is what lets
/// type inference pin `T` at call sites like `x * rng.gen_range(0.8..1.2)`
/// (mirrors upstream rand's `SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                // Closed interval: scale by the next-representable step.
                lo + (unit_f64(rng) as $t) * (hi - lo) * (1.0 + <$t>::EPSILON)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (floats in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T: SampleUniform, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
