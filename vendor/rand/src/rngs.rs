//! Concrete generators. `StdRng` is xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // All-zero state is a fixed point of xoshiro; nudge it.
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}
