//! Slice sampling helpers (`shuffle`, `choose`).

use crate::Rng;

/// Extension methods on slices for random sampling.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(12);
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert!([5].choose(&mut rng).is_some());
    }
}
