//! Offline stand-in for `serde`. Instead of the visitor architecture, this
//! shim round-trips through an in-memory [`Value`] tree: `Serialize` lowers
//! a type to a `Value`, `Deserialize` raises one back. `serde_json` (the
//! sibling shim) renders/parses `Value` as JSON text. The derive macros in
//! `serde_derive` generate impls against these two traits.
//!
//! Coverage is intentionally the subset the alem workspace uses: structs
//! with named fields, externally/adjacently tagged enums, `Option`, `Vec`,
//! `Box`, tuples, strings, bools, ints, and floats.

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON-shaped value. `Object` preserves insertion order so
/// serialized field order matches declaration order (as serde_json does
/// for structs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object, `None` for missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: shape mismatch, missing field, etc.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for this object.
    fn serialize_value(&self) -> Value;
}

/// Raise a [`Value`] tree back into `Self`.
pub trait Deserialize: Sized {
    /// Parse `v`; `Err` on shape mismatch.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize field `key` from object `v`. A missing key is
/// treated as `Null` so `Option` fields tolerate absence.
pub fn field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(inner) => {
            T::deserialize_value(inner).map_err(|e| DeError(format!("field `{key}`: {}", e.0)))
        }
        None => T::deserialize_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{key}`"))),
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json renders non-finite as null
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(DeError(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
                C::deserialize_value(&items[2])?,
            )),
            other => Err(DeError(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(some.serialize_value(), Value::Int(5));
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Int(5)),
            Ok(Some(5))
        );
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        let a: u32 = field(&obj, "a").unwrap();
        assert_eq!(a, 1);
        let b: Option<u32> = field(&obj, "b").unwrap();
        assert_eq!(b, None);
        assert!(field::<u32>(&obj, "b").is_err());
    }
}
