//! Offline stand-in for `serde_derive`. Generates impls of the shim
//! `serde::Serialize` / `serde::Deserialize` traits (value-tree model) by
//! parsing the item's token stream directly — no `syn`/`quote`.
//!
//! Supported shapes (the ones this workspace uses):
//! - structs with named fields (no generics)
//! - enums whose variants are unit, one-field tuple ("newtype"), or
//!   named-field; externally tagged by default, adjacently tagged with
//!   `#[serde(tag = "...", content = "...")]`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
    /// `Some((tag, content))` when `#[serde(tag = "..", content = "..")]`.
    tagging: Option<(String, String)>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tagging = None;

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(t) = parse_serde_attr(g.stream()) {
                        tagging = Some(t);
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim does not support generic types ({name})");
    }
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
        other => panic!("derive shim supports only braced bodies for {name}, got {other:?}"),
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(group.stream())),
        "enum" => Body::Enum(parse_variants(group.stream())),
        other => panic!("derive: unsupported item kind `{other}`"),
    };
    Item {
        name,
        body,
        tagging,
    }
}

/// Extract `(tag, content)` from a `serde(tag = "..", content = "..")`
/// attribute body, if this bracket group is one.
fn parse_serde_attr(stream: TokenStream) -> Option<(String, String)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut tag = None;
    let mut content = None;
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(val)),
        ) = (inner.get(j), inner.get(j + 1), inner.get(j + 2))
        {
            if eq.as_char() == '=' {
                let val = val.to_string().trim_matches('"').to_string();
                match key.to_string().as_str() {
                    "tag" => tag = Some(val),
                    "content" => content = Some(val),
                    other => panic!("derive shim: unsupported serde attribute `{other}`"),
                }
                j += 3;
                continue;
            }
        }
        j += 1;
    }
    match (tag, content) {
        (Some(t), Some(c)) => Some((t, c)),
        (None, None) => None,
        _ => panic!("derive shim requires both tag and content for adjacent tagging"),
    }
}

/// Field names of a named-field body: skip attributes and visibility, take
/// the ident before each top-level `:`, then skip the type (commas inside
/// `<...>` or delimited groups don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes / visibility before the field name.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // variant attribute (doc comments)
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let mut angle = 0i32;
                for t in g.stream() {
                    match &t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            panic!("derive shim supports only 1-field tuple variants ({name})")
                        }
                        _ => {}
                    }
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(\"{key}\".to_string(), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    obj_entry(
                        f,
                        &format!("::serde::Serialize::serialize_value(&self.{f})"),
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match (&v.kind, &item.tagging) {
                        (VariantKind::Unit, None) => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        (VariantKind::Unit, Some((tag, _))) => format!(
                            "{name}::{vname} => ::serde::Value::Object(vec![{}])",
                            obj_entry(tag, &format!("::serde::Value::Str(\"{vname}\".to_string())"))
                        ),
                        (VariantKind::Newtype, None) => format!(
                            "{name}::{vname}(inner) => ::serde::Value::Object(vec![{}])",
                            obj_entry(vname, "::serde::Serialize::serialize_value(inner)")
                        ),
                        (VariantKind::Newtype, Some((tag, content))) => format!(
                            "{name}::{vname}(inner) => ::serde::Value::Object(vec![{}, {}])",
                            obj_entry(tag, &format!("::serde::Value::Str(\"{vname}\".to_string())")),
                            obj_entry(content, "::serde::Serialize::serialize_value(inner)")
                        ),
                        (VariantKind::Named(fields), tagging) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    obj_entry(f, &format!("::serde::Serialize::serialize_value({f})"))
                                })
                                .collect();
                            let inner = format!("::serde::Value::Object(vec![{}])", entries.join(", "));
                            match tagging {
                                None => format!(
                                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![{}])",
                                    obj_entry(vname, &inner)
                                ),
                                Some((tag, content)) => format!(
                                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![{}, {}])",
                                    obj_entry(tag, &format!(
                                        "::serde::Value::Str(\"{vname}\".to_string())"
                                    )),
                                    obj_entry(content, &inner)
                                ),
                            }
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Enum(variants) => {
            let construct = |v: &Variant, content_expr: &str| -> String {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => format!("Ok({name}::{vname})"),
                    VariantKind::Newtype => format!(
                        "Ok({name}::{vname}(::serde::Deserialize::deserialize_value({content_expr})?))"
                    ),
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field({content_expr}, \"{f}\")?"))
                            .collect();
                        format!("Ok({name}::{vname} {{ {} }})", inits.join(", "))
                    }
                }
            };
            match &item.tagging {
                Some((tag, content)) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|v| format!("\"{}\" => {}", v.name, construct(v, "content")))
                        .collect();
                    format!(
                        "let tag: String = ::serde::field(v, \"{tag}\")?;\n\
                         let null = ::serde::Value::Null;\n\
                         let content = v.get(\"{content}\").unwrap_or(&null);\n\
                         match tag.as_str() {{ {}, other => Err(::serde::DeError(format!(\"unknown {name} variant {{other:?}}\"))) }}",
                        arms.join(", ")
                    )
                }
                None => {
                    let unit_arms: Vec<String> = variants
                        .iter()
                        .filter(|v| matches!(v.kind, VariantKind::Unit))
                        .map(|v| format!("\"{}\" => return {}", v.name, construct(v, "v")))
                        .collect();
                    let unit_match = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "if let ::serde::Value::Str(s) = v {{\n\
                                 match s.as_str() {{ {}, _ => {{}} }}\n\
                             }}\n",
                            unit_arms.join(", ")
                        )
                    };
                    let tagged_arms: Vec<String> = variants
                        .iter()
                        .filter(|v| !matches!(v.kind, VariantKind::Unit))
                        .map(|v| format!("\"{}\" => return {}", v.name, construct(v, "content")))
                        .collect();
                    format!(
                        "{unit_match}\
                         if let ::serde::Value::Object(fields) = v {{\n\
                             if fields.len() == 1 {{\n\
                                 let (tag, content) = (&fields[0].0, &fields[0].1);\n\
                                 let _ = content;\n\
                                 match tag.as_str() {{ {}, _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError(format!(\"bad {name} value: {{v:?}}\")))",
                        if tagged_arms.is_empty() {
                            "_ => {}".to_string()
                        } else {
                            format!("{}, _ => {{}}", tagged_arms.join(", "))
                        }
                    )
                }
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
