//! Offline stand-in for `serde_json`: renders and parses the serde shim's
//! [`serde::Value`] tree as JSON text. Supports `to_string`,
//! `to_string_pretty`, and `from_str`.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize_value(&v).map_err(|e| Error(e.0))
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&render_f64(*f)),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(out, indent, depth, "[", "]", items.len(), |out, i| {
            render(&items[i], out, indent, depth + 1)
        }),
        Value::Object(fields) => {
            render_seq(out, indent, depth, "{", "}", fields.len(), |out, i| {
                render_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&fields[i].1, out, indent, depth + 1);
            })
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: &str,
    close: &str,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push_str(open);
    if n == 0 {
        out.push_str(close);
        return;
    }
    for i in 0..n {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push_str(close);
}

/// Match serde_json's float text: non-finite becomes `null`; whole-valued
/// floats keep a trailing `.0`.
fn render_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".to_string()))?;
                    let c = rest.chars().next().unwrap_or('\u{fffd}');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Float(0.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        render(&v, &mut out, None, 0);
        assert_eq!(out, r#"{"a":1,"b":0.5,"c":[true,null]}"#);
        let mut pretty = String::new();
        render(&v, &mut pretty, Some(2), 0);
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn whole_floats_keep_point_zero() {
        assert_eq!(render_f64(1.0), "1.0");
        assert_eq!(render_f64(0.4), "0.4");
        assert_eq!(render_f64(f64::NAN), "null");
        assert_eq!(render_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parses_round_trip() {
        let text = r#"{"name":"a\"b","xs":[1,2.5,-3],"ok":true,"none":null}"#;
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value().unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("a\"b".to_string())));
        assert_eq!(
            v.get("xs"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::Int(-3)
            ]))
        );
        let mut out = String::new();
        render(&v, &mut out, None, 0);
        assert_eq!(
            out,
            r#"{"name":"a\"b","xs":[1,2.5,-3],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn from_str_typed() {
        let xs: Vec<f64> = from_str("[1.5, 2, 3.25]").unwrap();
        assert_eq!(xs, vec![1.5, 2.0, 3.25]);
        let flag: bool = from_str("true").unwrap();
        assert!(flag);
        assert!(from_str::<bool>("truex").is_err());
    }
}
