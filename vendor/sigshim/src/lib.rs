//! Minimal POSIX signal shim: latch SIGTERM/SIGINT into an `AtomicBool`.
//!
//! The workspace has no registry access, so `signal-hook`/`ctrlc` are
//! unavailable; this crate is the offline stand-in, scoped to the one
//! thing `alem-serve` needs — *"has a shutdown signal arrived?"* — with
//! the canonical async-signal-safe implementation: the handler does
//! nothing but store into a `static` atomic.
//!
//! On non-Unix targets [`install`] is a no-op returning `false`, and
//! [`requested`] only ever reports shutdowns triggered programmatically
//! via [`raise_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// SIGINT signal number (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGTERM signal number (polite kill; what `kill` and orchestrators send).
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
mod imp {
    use super::{Ordering, SHUTDOWN, SIGINT, SIGTERM};

    // `signal(2)` from libc, which every Rust binary on Unix already
    // links. The simple `fn(int)` handler ABI avoids depending on the
    // platform-specific `sigaction` struct layout. Good enough here: we
    // need no SA_RESTART guarantees — accept loops run with read
    // timeouts precisely so EINTR/latency never matters.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        // alem-lint: allow(forbid-unsafe) -- vendored shim; see vendor/README.md
        let mut ok = true;
        for signum in [SIGTERM, SIGINT] {
            // SAFETY: `signal` is the C library's own entry point; the
            // handler is an `extern "C" fn(i32)` that only performs an
            // atomic store, which is async-signal-safe.
            let prev = unsafe { signal(signum, on_signal as *const () as usize) };
            ok &= prev != SIG_ERR;
        }
        ok
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install handlers for SIGTERM and SIGINT that latch [`requested`] to
/// `true`. Returns whether installation succeeded (always `false` on
/// non-Unix targets, where the latch still works via [`raise_shutdown`]).
///
/// Process-global and idempotent: callers may invoke it repeatedly.
pub fn install() -> bool {
    imp::install()
}

/// True once a shutdown signal has been received (or raised in-process).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Latch the shutdown flag programmatically (tests; `drain` commands).
pub fn raise_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the latch (tests only: the flag is process-global).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trip() {
        reset();
        assert!(!requested());
        raise_shutdown();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_succeeds_on_unix() {
        assert!(install());
    }
}
